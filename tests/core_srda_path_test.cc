// Tests for the SRDA regularization path.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/srda.h"
#include "core/srda_path.h"
#include "matrix/blas.h"

namespace srda {
namespace {

void MakeBlobs(int num_classes, int per_class, int dim, Rng* rng, Matrix* x,
               std::vector<int>* labels) {
  *x = Matrix(num_classes * per_class, dim);
  labels->clear();
  for (int k = 0; k < num_classes; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < dim; ++j) {
        (*x)(row, j) = 2.5 * (j % num_classes == k) + rng->NextGaussian();
      }
      labels->push_back(k);
    }
  }
}

TEST(SrdaPathTest, MatchesDirectTrainingAcrossAlphas) {
  Rng rng(1);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 20, 8, &rng, &x, &labels);

  SrdaRegularizationPath path;
  ASSERT_TRUE(path.Fit(x, labels, 3));
  for (double alpha : {1e-4, 0.01, 0.5, 1.0, 10.0, 500.0}) {
    SrdaOptions options;
    options.alpha = alpha;
    const SrdaModel direct = FitSrda(x, labels, 3, options);
    ASSERT_TRUE(direct.converged);
    const LinearEmbedding from_path = path.EmbeddingAt(alpha);
    EXPECT_LT(MaxAbsDiff(from_path.projection(),
                         direct.embedding.projection()),
              1e-8 * (1.0 + NormInf(direct.embedding.projection().Col(0))))
        << "alpha " << alpha;
    EXPECT_LT(MaxAbsDiff(from_path.bias(), direct.embedding.bias()), 1e-8)
        << "alpha " << alpha;
  }
}

TEST(SrdaPathTest, WorksInWideRegime) {
  // n > m: the path solves the dual system through the shared engine, same
  // as direct training; both are the same exact ridge solution.
  Rng rng(2);
  const int m = 15;
  const int n = 40;
  Matrix x(m, n);
  std::vector<int> labels;
  for (int i = 0; i < m; ++i) {
    labels.push_back(i % 3);
    for (int j = 0; j < n; ++j) {
      x(i, j) = 1.5 * (i % 3) + rng.NextGaussian();
    }
  }
  SrdaRegularizationPath path;
  ASSERT_TRUE(path.Fit(x, labels, 3));
  SrdaOptions options;
  options.alpha = 0.3;
  const SrdaModel direct = FitSrda(x, labels, 3, options);
  const LinearEmbedding from_path = path.EmbeddingAt(0.3);
  EXPECT_LT(
      MaxAbsDiff(from_path.projection(), direct.embedding.projection()),
      1e-9);
}

TEST(SrdaPathTest, ManyAlphasCheaperThanRetraining) {
  // Not a wall-clock assertion (too flaky on shared machines); verify the
  // path evaluates a large grid and stays consistent/monotone in shrinkage.
  Rng rng(3);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(4, 15, 10, &rng, &x, &labels);
  SrdaRegularizationPath path;
  ASSERT_TRUE(path.Fit(x, labels, 4));
  double previous_norm = 1e300;
  for (int grid = 0; grid < 50; ++grid) {
    const double alpha = std::pow(10.0, -3.0 + 0.12 * grid);
    const LinearEmbedding embedding = path.EmbeddingAt(alpha);
    double norm = 0.0;
    for (int j = 0; j < embedding.output_dim(); ++j) {
      norm += Norm2(embedding.projection().Col(j));
    }
    // Ridge shrinkage: total projection norm decreases as alpha grows.
    EXPECT_LE(norm, previous_norm + 1e-12) << "alpha " << alpha;
    previous_norm = norm;
  }
}

TEST(SrdaPathDeathTest, UseBeforeFitAborts) {
  SrdaRegularizationPath path;
  EXPECT_DEATH(path.EmbeddingAt(1.0), "before a successful Fit");
}

}  // namespace
}  // namespace srda
