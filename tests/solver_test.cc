// Golden-equivalence tests for the shared RidgeSolver engine.
//
// The refactor that moved every trainer onto RidgeSolver promises bitwise
// identical results to the per-trainer solve loops it replaced. These tests
// keep local copies of the pre-refactor arithmetic (normal equations and
// per-column damped LSQR, exactly as they lived in core/srda.cc and
// core/semi_supervised_srda.cc) and require MaxAbsDiff == 0 against the
// engine on fixed-seed data, dense and sparse, at several thread counts.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/linear_operator.h"
#include "linalg/lsqr.h"
#include "matrix/blas.h"
#include "solver/ridge_solver.h"
#include "sparse/sparse_matrix.h"

namespace srda {
namespace {

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix x(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) x(i, j) = rng.NextGaussian();
  }
  return x;
}

// Random sparse matrix with ~30% density (zeros give the sparse kernels'
// zero-skip branch coverage).
SparseMatrix RandomSparse(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  SparseMatrixBuilder builder(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (rng.NextDouble() < 0.3) builder.Add(i, j, rng.NextGaussian());
    }
  }
  return std::move(builder).Build();
}

// Verbatim copy of the pre-refactor dense normal-equations path
// (core/srda.cc, SolveNormalEquations).
bool ReferenceNormalEquations(const Matrix& x, const Matrix& responses,
                              double alpha, Matrix* projection, Vector* bias) {
  const int m = x.rows();
  const int n = x.cols();
  const int d = responses.cols();
  const Vector mean = ColumnMeans(x);
  Matrix centered = x;
  SubtractRowVector(mean, &centered);
  Cholesky chol;
  if (n <= m) {
    Matrix gram = Gram(centered);
    AddDiagonal(alpha, &gram);
    if (!chol.Factor(gram)) return false;
    *projection = chol.SolveMatrix(MultiplyTransposedA(centered, responses));
  } else {
    Matrix gram = OuterGram(centered);
    AddDiagonal(alpha, &gram);
    if (!chol.Factor(gram)) return false;
    const Matrix dual = chol.SolveMatrix(responses);
    *projection = MultiplyTransposedA(centered, dual);
  }
  *bias = Vector(d);
  const Vector mean_projected = MultiplyTransposed(*projection, mean);
  for (int j = 0; j < d; ++j) (*bias)[j] = -mean_projected[j];
  return true;
}

// Verbatim copy of the pre-refactor per-column LSQR path on the implicitly
// centered operator (core/srda.cc, SolveWithLsqr), minus the thread pool:
// each column was the unchanged serial recurrence, so a plain loop is the
// same arithmetic.
void ReferenceLsqrCentered(const LinearOperator& data, const Matrix& responses,
                           double alpha, int max_iterations, Matrix* projection,
                           Vector* bias, int* total_iterations) {
  const int m = data.rows();
  const int n = data.cols();
  const int d = responses.cols();
  Vector mean = data.ApplyTransposed(Vector(m, 1.0));
  Scale(1.0 / m, &mean);
  const CenterColumnsOperator centered(&data, &mean);
  LsqrOptions lsqr_options;
  lsqr_options.max_iterations = max_iterations;
  lsqr_options.damp = std::sqrt(alpha);
  lsqr_options.atol = 1e-10;
  lsqr_options.btol = 1e-10;
  *projection = Matrix(n, d);
  *bias = Vector(d);
  *total_iterations = 0;
  for (int j = 0; j < d; ++j) {
    const LsqrResult result = Lsqr(centered, responses.Col(j), lsqr_options);
    *total_iterations += result.iterations;
    for (int i = 0; i < n; ++i) (*projection)(i, j) = result.x[i];
    (*bias)[j] = -Dot(mean, result.x);
  }
}

// Verbatim copy of the pre-refactor augmented-ones LSQR path
// (core/semi_supervised_srda.cc, sparse overload).
void ReferenceLsqrAugmented(const LinearOperator& data, const Matrix& responses,
                            double alpha, int max_iterations,
                            Matrix* projection, Vector* bias) {
  const int n = data.cols();
  const int d = responses.cols();
  const AppendOnesColumnOperator augmented(&data);
  LsqrOptions lsqr_options;
  lsqr_options.max_iterations = max_iterations;
  lsqr_options.damp = std::sqrt(alpha);
  *projection = Matrix(n, d);
  *bias = Vector(d);
  for (int j = 0; j < d; ++j) {
    const LsqrResult result = Lsqr(augmented, responses.Col(j), lsqr_options);
    for (int i = 0; i < n; ++i) (*projection)(i, j) = result.x[i];
    (*bias)[j] = result.x[n];
  }
}

TEST(RidgeSolverTest, PrimalNormalEquationsMatchGoldenBitwise) {
  const Matrix x = RandomMatrix(40, 12, 7);  // m > n: primal Gram.
  const Matrix responses = RandomMatrix(40, 3, 8);
  Matrix golden_projection;
  Vector golden_bias;
  ASSERT_TRUE(ReferenceNormalEquations(x, responses, 0.05, &golden_projection,
                                       &golden_bias));
  RidgeSolver solver(&x);
  const RidgeSolution solution = solver.Solve(responses, 0.05);
  ASSERT_TRUE(solution.ok);
  EXPECT_EQ(0.0, MaxAbsDiff(solution.coefficients, golden_projection));
  EXPECT_EQ(0.0, MaxAbsDiff(solution.bias, golden_bias));
  EXPECT_EQ(0, solution.total_lsqr_iterations);
}

TEST(RidgeSolverTest, DualNormalEquationsMatchGoldenBitwise) {
  const Matrix x = RandomMatrix(15, 50, 9);  // n > m: dual Gram (Eqn. 21).
  const Matrix responses = RandomMatrix(15, 2, 10);
  Matrix golden_projection;
  Vector golden_bias;
  ASSERT_TRUE(ReferenceNormalEquations(x, responses, 0.7, &golden_projection,
                                       &golden_bias));
  RidgeSolver solver(&x);
  const RidgeSolution solution = solver.Solve(responses, 0.7);
  ASSERT_TRUE(solution.ok);
  EXPECT_EQ(0.0, MaxAbsDiff(solution.coefficients, golden_projection));
  EXPECT_EQ(0.0, MaxAbsDiff(solution.bias, golden_bias));
}

TEST(RidgeSolverTest, DenseLsqrMatchesGoldenBitwise) {
  const Matrix x = RandomMatrix(30, 14, 11);
  const Matrix responses = RandomMatrix(30, 3, 12);
  const DenseOperator data(&x);
  Matrix golden_projection;
  Vector golden_bias;
  int golden_iterations = 0;
  ReferenceLsqrCentered(data, responses, 0.2, 25, &golden_projection,
                        &golden_bias, &golden_iterations);
  RidgeSolver solver(&x);
  RidgeSolveOptions options;
  options.method = RidgeMethod::kLsqr;
  options.lsqr_iterations = 25;
  const RidgeSolution solution = solver.Solve(responses, 0.2, options);
  ASSERT_TRUE(solution.ok);
  EXPECT_EQ(0.0, MaxAbsDiff(solution.coefficients, golden_projection));
  EXPECT_EQ(0.0, MaxAbsDiff(solution.bias, golden_bias));
  EXPECT_EQ(golden_iterations, solution.total_lsqr_iterations);
}

TEST(RidgeSolverTest, SparseLsqrMatchesGoldenBitwise) {
  const SparseMatrix x = RandomSparse(35, 20, 13);
  const Matrix responses = RandomMatrix(35, 3, 14);
  const SparseOperator data(&x);
  Matrix golden_projection;
  Vector golden_bias;
  int golden_iterations = 0;
  ReferenceLsqrCentered(data, responses, 0.4, 30, &golden_projection,
                        &golden_bias, &golden_iterations);
  RidgeSolver solver(&data);
  RidgeSolveOptions options;
  options.lsqr_iterations = 30;
  const RidgeSolution solution = solver.Solve(responses, 0.4, options);
  ASSERT_TRUE(solution.ok);
  EXPECT_EQ(0.0, MaxAbsDiff(solution.coefficients, golden_projection));
  EXPECT_EQ(0.0, MaxAbsDiff(solution.bias, golden_bias));
  EXPECT_EQ(golden_iterations, solution.total_lsqr_iterations);
}

TEST(RidgeSolverTest, AugmentedOnesLsqrMatchesGoldenBitwise) {
  const SparseMatrix x = RandomSparse(25, 18, 15);
  const Matrix responses = RandomMatrix(25, 2, 16);
  const SparseOperator data(&x);
  Matrix golden_projection;
  Vector golden_bias;
  ReferenceLsqrAugmented(data, responses, 0.3, 30, &golden_projection,
                         &golden_bias);
  RidgeSolver solver(&data, RidgeBias::kAugmentedOnes);
  RidgeSolveOptions options;
  options.lsqr_iterations = 30;
  const RidgeSolution solution = solver.Solve(responses, 0.3, options);
  ASSERT_TRUE(solution.ok);
  EXPECT_EQ(0.0, MaxAbsDiff(solution.coefficients, golden_projection));
  EXPECT_EQ(0.0, MaxAbsDiff(solution.bias, golden_bias));
}

TEST(RidgeSolverTest, GramBindingMatchesDirectCholesky) {
  const Matrix x = RandomMatrix(20, 20, 17);
  Matrix base = Gram(x);  // SPD after the ridge shift.
  const Matrix responses = RandomMatrix(20, 3, 18);
  Matrix shifted = base;
  AddDiagonal(0.6, &shifted);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(shifted));
  const Matrix golden = chol.SolveMatrix(responses);
  RidgeSolver solver = RidgeSolver::FromGram(std::move(base));
  const RidgeSolution solution = solver.Solve(responses, 0.6);
  ASSERT_TRUE(solution.ok);
  EXPECT_EQ(0.0, MaxAbsDiff(solution.coefficients, golden));
  EXPECT_EQ(0, solution.bias.size());
}

TEST(LsqrBatchTest, MatchesPerColumnLsqrBitwise) {
  const SparseMatrix x = RandomSparse(40, 22, 19);
  const SparseOperator data(&x);
  const Matrix b = RandomMatrix(40, 4, 20);
  LsqrOptions options;
  options.max_iterations = 35;
  options.damp = 0.3;
  const std::vector<LsqrResult> batched = LsqrBatch(data, b, options);
  ASSERT_EQ(4u, batched.size());
  for (int j = 0; j < 4; ++j) {
    const LsqrResult serial = Lsqr(data, b.Col(j), options);
    EXPECT_EQ(0.0, MaxAbsDiff(batched[static_cast<size_t>(j)].x, serial.x))
        << "column " << j;
    EXPECT_EQ(serial.iterations, batched[static_cast<size_t>(j)].iterations)
        << "column " << j;
    EXPECT_EQ(serial.residual_norm,
              batched[static_cast<size_t>(j)].residual_norm)
        << "column " << j;
    EXPECT_EQ(serial.converged, batched[static_cast<size_t>(j)].converged)
        << "column " << j;
  }
}

TEST(LsqrBatchTest, MixedConvergenceMatchesSerial) {
  // Columns that converge at different iterations exercise the freeze/pack
  // logic: the batch must keep late columns running bitwise-identically
  // after early ones drop out.
  const Matrix dense = RandomMatrix(30, 10, 21);
  const DenseOperator data(&dense);
  Matrix b = RandomMatrix(30, 3, 22);
  // Make column 0 exactly solvable (in the range of A) so it converges fast.
  const Vector seed_x = RandomMatrix(10, 1, 23).Col(0);
  const Vector ax = data.Apply(seed_x);
  for (int i = 0; i < 30; ++i) b(i, 0) = ax[i];
  LsqrOptions options;
  options.max_iterations = 60;
  const std::vector<LsqrResult> batched = LsqrBatch(data, b, options);
  for (int j = 0; j < 3; ++j) {
    const LsqrResult serial = Lsqr(data, b.Col(j), options);
    EXPECT_EQ(0.0, MaxAbsDiff(batched[static_cast<size_t>(j)].x, serial.x))
        << "column " << j;
    EXPECT_EQ(serial.iterations, batched[static_cast<size_t>(j)].iterations)
        << "column " << j;
  }
}

TEST(RidgeSolverTest, ResultsIdenticalAcrossThreadCounts) {
  const SparseMatrix sparse = RandomSparse(60, 30, 24);
  const SparseOperator data(&sparse);
  const Matrix dense = RandomMatrix(50, 25, 25);
  const Matrix responses_sparse = RandomMatrix(60, 3, 26);
  const Matrix responses_dense = RandomMatrix(50, 3, 27);

  Matrix lsqr_coeffs[2], ne_coeffs[2];
  Vector lsqr_bias[2], ne_bias[2];
  const int thread_counts[2] = {1, 4};
  for (int t = 0; t < 2; ++t) {
    SetGlobalThreadCount(thread_counts[t]);
    RidgeSolver lsqr_solver(&data);
    const RidgeSolution lsqr = lsqr_solver.Solve(responses_sparse, 0.1);
    ASSERT_TRUE(lsqr.ok);
    lsqr_coeffs[t] = lsqr.coefficients;
    lsqr_bias[t] = lsqr.bias;
    RidgeSolver ne_solver(&dense);
    const RidgeSolution ne = ne_solver.Solve(responses_dense, 0.1);
    ASSERT_TRUE(ne.ok);
    ne_coeffs[t] = ne.coefficients;
    ne_bias[t] = ne.bias;
  }
  SetGlobalThreadCount(0);  // Restore the environment default.
  EXPECT_EQ(0.0, MaxAbsDiff(lsqr_coeffs[0], lsqr_coeffs[1]));
  EXPECT_EQ(0.0, MaxAbsDiff(lsqr_bias[0], lsqr_bias[1]));
  EXPECT_EQ(0.0, MaxAbsDiff(ne_coeffs[0], ne_coeffs[1]));
  EXPECT_EQ(0.0, MaxAbsDiff(ne_bias[0], ne_bias[1]));
}

TEST(RidgeSolverTest, GramCacheReuseMatchesFreshSolver) {
  // One solver sweeping alpha1 -> alpha2 -> alpha1 must give exactly the
  // answers of a fresh solver per alpha: the cache only skips the Gram
  // product, never changes it.
  const Matrix x = RandomMatrix(30, 16, 28);
  const Matrix responses = RandomMatrix(30, 3, 29);
  RidgeSolver sweeping(&x);
  const double alphas[3] = {0.05, 2.0, 0.05};
  for (double alpha : alphas) {
    const RidgeSolution swept = sweeping.Solve(responses, alpha);
    RidgeSolver fresh(&x);
    const RidgeSolution direct = fresh.Solve(responses, alpha);
    ASSERT_TRUE(swept.ok);
    ASSERT_TRUE(direct.ok);
    EXPECT_EQ(0.0, MaxAbsDiff(swept.coefficients, direct.coefficients))
        << "alpha " << alpha;
    EXPECT_EQ(0.0, MaxAbsDiff(swept.bias, direct.bias)) << "alpha " << alpha;
  }
}

TEST(RidgeSolverTest, FactorAtCachesAndRecovers) {
  Matrix x(6, 3);  // All zeros: the Gram is singular at alpha == 0.
  RidgeSolver solver(&x);
  EXPECT_EQ(nullptr, solver.FactorAt(0.0));
  const RidgeSolution failed = solver.Solve(Matrix(6, 2), 0.0);
  EXPECT_FALSE(failed.ok);
  // The same solver recovers at a positive alpha.
  const Cholesky* factor = solver.FactorAt(1.0);
  ASSERT_NE(nullptr, factor);
  EXPECT_EQ(factor, solver.FactorAt(1.0));  // Cached: same object back.
  const RidgeSolution solved = solver.Solve(Matrix(6, 2), 1.0);
  EXPECT_TRUE(solved.ok);
}

Matrix DropRows(const Matrix& x, const std::vector<int>& rows) {
  Matrix kept(x.rows() - static_cast<int>(rows.size()), x.cols());
  int out = 0;
  size_t next = 0;
  for (int i = 0; i < x.rows(); ++i) {
    if (next < rows.size() && rows[next] == i) {
      ++next;
      continue;
    }
    for (int j = 0; j < x.cols(); ++j) kept(out, j) = x(i, j);
    ++out;
  }
  return kept;
}

TEST(RidgeSolverTest, ExcludeRowsPrimalMatchesFreshSolverOnSubset) {
  // The fold child's downdated factor must solve the same ridge problem a
  // fresh solver on the kept rows does, across an alpha sweep (the
  // factor-once CV path). m > n keeps the parent on the primal side.
  const Matrix x = RandomMatrix(40, 12, 41);
  const Matrix responses = RandomMatrix(34, 3, 42);
  const std::vector<int> fold = {3, 7, 8, 19, 25, 31};
  const Matrix kept = DropRows(x, fold);
  RidgeSolver parent(&x);
  RidgeSolver child = parent.ExcludeRows(fold);
  for (double alpha : {0.05, 2.0, 0.05}) {
    const RidgeSolution fold_solution = child.Solve(responses, alpha);
    RidgeSolver fresh(&kept);
    const RidgeSolution direct = fresh.Solve(responses, alpha);
    ASSERT_TRUE(fold_solution.ok);
    ASSERT_TRUE(direct.ok);
    EXPECT_LT(MaxAbsDiff(fold_solution.coefficients, direct.coefficients),
              1e-8)
        << "alpha " << alpha;
    EXPECT_LT(MaxAbsDiff(fold_solution.bias, direct.bias), 1e-8)
        << "alpha " << alpha;
  }
}

TEST(RidgeSolverTest, ExcludeRowsDualMatchesFreshSolverOnSubset) {
  // n > m puts the parent on the dual side: the child factor comes from
  // row/col deletion plus the rank-2 recentering instead of the primal
  // rank-(k+1) downdate. Boundary indices (first and last row) included.
  const Matrix x = RandomMatrix(15, 50, 43);
  const Matrix responses = RandomMatrix(11, 2, 44);
  const std::vector<int> fold = {0, 4, 9, 14};
  const Matrix kept = DropRows(x, fold);
  RidgeSolver parent(&x);
  RidgeSolver child = parent.ExcludeRows(fold);
  for (double alpha : {0.1, 1.5}) {
    const RidgeSolution fold_solution = child.Solve(responses, alpha);
    RidgeSolver fresh(&kept, GramSide::kDual);
    const RidgeSolution direct = fresh.Solve(responses, alpha);
    ASSERT_TRUE(fold_solution.ok);
    ASSERT_TRUE(direct.ok);
    EXPECT_LT(MaxAbsDiff(fold_solution.coefficients, direct.coefficients),
              1e-8)
        << "alpha " << alpha;
    EXPECT_LT(MaxAbsDiff(fold_solution.bias, direct.bias), 1e-8)
        << "alpha " << alpha;
  }
}

TEST(RidgeSolverTest, ExcludeRowsFallsBackAndPreservesFailureContract) {
  // Excluding enough rows makes the child's Gram rank-deficient at
  // alpha == 0: the downdate hits the condition floor, the fallback
  // refactors from scratch and also (correctly) fails, so Solve reports
  // ok == false exactly like a fresh solver would. A positive alpha then
  // recovers through the downdate path.
  const Matrix x = RandomMatrix(14, 10, 45);
  const std::vector<int> fold = {1, 2, 5, 6, 8, 10, 11, 13};
  const Matrix kept = DropRows(x, fold);  // 6 rows < 10 cols: singular Gram.
  RidgeSolver parent(&x);
  RidgeSolver child = parent.ExcludeRows(fold);
  EXPECT_EQ(nullptr, child.FactorAt(0.0));
  const RidgeSolution failed = child.Solve(Matrix(6, 2), 0.0);
  EXPECT_FALSE(failed.ok);
  const Matrix responses = RandomMatrix(6, 2, 46);
  const RidgeSolution recovered = child.Solve(responses, 0.5);
  ASSERT_TRUE(recovered.ok);
  RidgeSolver fresh(&kept, GramSide::kPrimal);
  const RidgeSolution direct = fresh.Solve(responses, 0.5);
  ASSERT_TRUE(direct.ok);
  EXPECT_LT(MaxAbsDiff(recovered.coefficients, direct.coefficients), 1e-8);
}

TEST(RidgeSolverDeathTest, ExcludeRowsRejectsUnsortedRows) {
  const Matrix x = RandomMatrix(8, 4, 47);
  RidgeSolver parent(&x);
  EXPECT_DEATH(parent.ExcludeRows({3, 1}), "sorted");
}

TEST(RidgeSolverTest, DenseAccessorsExposeCenteredData) {
  const Matrix x = RandomMatrix(12, 5, 30);
  RidgeSolver solver(&x);
  const Vector golden_mean = ColumnMeans(x);
  Matrix golden_centered = x;
  SubtractRowVector(golden_mean, &golden_centered);
  EXPECT_EQ(0.0, MaxAbsDiff(solver.mean(), golden_mean));
  EXPECT_EQ(0.0, MaxAbsDiff(solver.centered(), golden_centered));
}

}  // namespace
}  // namespace srda
