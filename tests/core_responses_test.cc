// Tests for SRDA response generation (Section III-B step 1).

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/responses.h"
#include "matrix/blas.h"

namespace srda {
namespace {

std::vector<int> BalancedLabels(int num_classes, int per_class) {
  std::vector<int> labels;
  for (int k = 0; k < num_classes; ++k) {
    for (int i = 0; i < per_class; ++i) labels.push_back(k);
  }
  return labels;
}

TEST(ResponsesTest, ShapeIsCMinusOne) {
  const Matrix responses = GenerateSrdaResponses(BalancedLabels(4, 5), 4);
  EXPECT_EQ(responses.rows(), 20);
  EXPECT_EQ(responses.cols(), 3);
}

TEST(ResponsesTest, TwoClassesGiveOneResponse) {
  const Matrix responses = GenerateSrdaResponses({0, 0, 1, 1, 1}, 2);
  EXPECT_EQ(responses.cols(), 1);
}

TEST(ResponsesTest, ResponsesAreOrthonormal) {
  const Matrix responses = GenerateSrdaResponses(BalancedLabels(5, 7), 5);
  EXPECT_LT(MaxAbsDiff(Gram(responses), Matrix::Identity(4)), 1e-10);
}

TEST(ResponsesTest, OrthogonalToOnesVector) {
  const Matrix responses = GenerateSrdaResponses(BalancedLabels(3, 6), 3);
  for (int j = 0; j < responses.cols(); ++j) {
    double sum = 0.0;
    for (int i = 0; i < responses.rows(); ++i) sum += responses(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-10) << "response " << j;
  }
}

TEST(ResponsesTest, ConstantWithinEachClass) {
  // Eqn. (16) of the paper: responses take one value per class.
  const std::vector<int> labels = {0, 1, 2, 0, 1, 2, 0, 2};
  const Matrix responses = GenerateSrdaResponses(labels, 3);
  for (int j = 0; j < responses.cols(); ++j) {
    double value_per_class[3];
    bool seen[3] = {false, false, false};
    for (int i = 0; i < static_cast<int>(labels.size()); ++i) {
      const int k = labels[static_cast<size_t>(i)];
      if (!seen[k]) {
        value_per_class[k] = responses(i, j);
        seen[k] = true;
      } else {
        EXPECT_NEAR(responses(i, j), value_per_class[k], 1e-12)
            << "row " << i << " response " << j;
      }
    }
  }
}

TEST(ResponsesTest, UnbalancedClasses) {
  const std::vector<int> labels = {0, 0, 0, 0, 0, 0, 0, 1, 2, 2};
  const Matrix responses = GenerateSrdaResponses(labels, 3);
  EXPECT_EQ(responses.cols(), 2);
  EXPECT_LT(MaxAbsDiff(Gram(responses), Matrix::Identity(2)), 1e-10);
  for (int j = 0; j < 2; ++j) {
    double sum = 0.0;
    for (int i = 0; i < 10; ++i) sum += responses(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-10);
  }
}

TEST(ResponsesTest, SpanEqualsCenteredIndicatorSpan) {
  // The responses span the same space as the centered class indicators.
  const std::vector<int> labels = BalancedLabels(4, 3);
  const int m = 12;
  const Matrix responses = GenerateSrdaResponses(labels, 4);
  // Centered indicator of class k must project entirely into the responses.
  for (int k = 0; k < 4; ++k) {
    Vector indicator(m);
    for (int i = 0; i < m; ++i) {
      indicator[i] = labels[static_cast<size_t>(i)] == k ? 1.0 : 0.0;
    }
    const double mean = 3.0 / 12.0;
    for (int i = 0; i < m; ++i) indicator[i] -= mean;
    Vector residual = indicator;
    for (int j = 0; j < responses.cols(); ++j) {
      const Vector response = responses.Col(j);
      Axpy(-Dot(response, indicator), response, &residual);
    }
    EXPECT_LT(Norm2(residual), 1e-10) << "class " << k;
  }
}

TEST(ResponsesDeathTest, SingleClassAborts) {
  EXPECT_DEATH(GenerateSrdaResponses({0, 0, 0}, 1), "two classes");
}

TEST(ResponsesDeathTest, EmptyClassAborts) {
  EXPECT_DEATH(GenerateSrdaResponses({0, 0, 2}, 3), "no samples");
}

// Property sweep over class counts and sizes.
class ResponsesSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ResponsesSweepTest, OrthonormalAndCentered) {
  const int c = 2 + GetParam();
  Rng rng(600 + GetParam());
  // Random class sizes in [1, 9].
  std::vector<int> labels;
  for (int k = 0; k < c; ++k) {
    const int size = 1 + static_cast<int>(rng.NextUint64Bounded(9));
    for (int i = 0; i < size; ++i) labels.push_back(k);
  }
  const Matrix responses = GenerateSrdaResponses(labels, c);
  EXPECT_EQ(responses.cols(), c - 1);
  EXPECT_LT(MaxAbsDiff(Gram(responses), Matrix::Identity(c - 1)), 1e-9);
  for (int j = 0; j < c - 1; ++j) {
    double sum = 0.0;
    for (int i = 0; i < responses.rows(); ++i) sum += responses(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(ClassCounts, ResponsesSweepTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace srda
