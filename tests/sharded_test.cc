// Tests for the out-of-core sharded training path: shard sources, the
// ShardedOperator, the RidgeSolver sharded binding, RowShardReader file
// streaming, and the IncrementalSrda bulk tail.
//
// The load-bearing property throughout is BITWISE equality with the in-RAM
// path — not tolerance agreement — at adversarial shard sizes (one row,
// m-1 rows, a size straddling the 512-row sparse transpose chunk grid) and
// across thread counts. The one deliberate exception is AddShard, whose
// blocked rank-k Cholesky update reassociates rotations and is specified
// to match AddSample only to solver tolerance.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/incremental_srda.h"
#include "core/srda.h"
#include "io/dataset_io.h"
#include "io/row_shard_reader.h"
#include "linalg/linear_operator.h"
#include "linalg/sharded_operator.h"
#include "matrix/blas.h"
#include "solver/ridge_solver.h"
#include "sparse/sparse_matrix.h"

namespace srda {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng.NextGaussian();
  }
  return m;
}

Vector RandomVector(int size, uint64_t seed) {
  Rng rng(seed);
  Vector v(size);
  for (int i = 0; i < size; ++i) v[i] = rng.NextGaussian();
  return v;
}

// ~25% fill with a few empty rows, so chunk folds see zero entries too.
SparseMatrix RandomSparse(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  SparseMatrixBuilder builder(rows, cols);
  for (int i = 0; i < rows; ++i) {
    if (i % 11 == 3) continue;  // empty row
    for (int j = 0; j < cols; ++j) {
      if (rng.NextDouble() < 0.25) builder.Add(i, j, rng.NextGaussian());
    }
  }
  return std::move(builder).Build();
}

std::vector<int> RandomLabels(int rows, int num_classes, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> labels(static_cast<size_t>(rows));
  // First rows cover every class so centroid fits never see an empty one.
  for (int i = 0; i < rows; ++i) {
    labels[static_cast<size_t>(i)] =
        i < num_classes ? i : rng.NextInt(0, num_classes - 1);
  }
  return labels;
}

void ExpectBitwiseEqual(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(a(i, j), b(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

void ExpectBitwiseEqual(const Vector& a, const Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "at " << i;
}

// Shard sizes exercising the adversarial corners for `rows` total rows:
// single-row shards, one short of everything, everything, and (for tall
// matrices) a size that straddles the 512-row sparse chunk grid.
std::vector<int> AdversarialShardSizes(int rows) {
  std::vector<int> sizes = {1, rows - 1, rows};
  if (rows > 512) sizes.push_back(300);  // shards cross the 512 grid line
  return sizes;
}

// --- ShardedOperator vs. the in-RAM operators, all four products. ---

TEST(ShardedOperatorTest, DenseProductsMatchAtEveryShardSize) {
  const Matrix x = RandomMatrix(37, 9, 1);
  const DenseOperator reference(&x);
  const Vector v = RandomVector(9, 2);
  const Vector u = RandomVector(37, 3);
  const Matrix vm = RandomMatrix(9, 4, 4);
  const Matrix um = RandomMatrix(37, 4, 5);
  for (int shard_rows : AdversarialShardSizes(37)) {
    DenseMatrixShardSource source(&x, shard_rows);
    ShardedOperator sharded(&source);
    ExpectBitwiseEqual(reference.Apply(v), sharded.Apply(v));
    ExpectBitwiseEqual(reference.ApplyTransposed(u), sharded.ApplyTransposed(u));
    ExpectBitwiseEqual(reference.ApplyMulti(vm), sharded.ApplyMulti(vm));
    ExpectBitwiseEqual(reference.ApplyTransposedMulti(um),
                       sharded.ApplyTransposedMulti(um));
  }
}

TEST(ShardedOperatorTest, SparseProductsMatchAcrossChunkGrid) {
  // 700 rows puts shard boundaries both inside and across the 512-row
  // transpose chunk grid, the hardest case for the carry-partial fold.
  const SparseMatrix x = RandomSparse(700, 23, 6);
  const SparseOperator reference(&x);
  const Vector v = RandomVector(23, 7);
  const Vector u = RandomVector(700, 8);
  const Matrix vm = RandomMatrix(23, 3, 9);
  const Matrix um = RandomMatrix(700, 3, 10);
  for (int shard_rows : AdversarialShardSizes(700)) {
    SparseMatrixShardSource source(&x, shard_rows);
    ShardedOperator sharded(&source);
    ExpectBitwiseEqual(reference.Apply(v), sharded.Apply(v));
    ExpectBitwiseEqual(reference.ApplyTransposed(u), sharded.ApplyTransposed(u));
    ExpectBitwiseEqual(reference.ApplyMulti(vm), sharded.ApplyMulti(vm));
    ExpectBitwiseEqual(reference.ApplyTransposedMulti(um),
                       sharded.ApplyTransposedMulti(um));
  }
}

// --- RidgeSolver sharded binding vs. the dense binding. ---

TEST(ShardedRidgeTest, NormalEquationsMatchDenseBitwise) {
  const Matrix x = RandomMatrix(41, 7, 11);
  const Matrix responses = RandomMatrix(41, 3, 12);
  RidgeSolver dense(&x, GramSide::kPrimal);
  const RidgeSolution reference = dense.Solve(responses, 0.5);
  ASSERT_TRUE(reference.ok);
  for (int shard_rows : AdversarialShardSizes(41)) {
    DenseMatrixShardSource source(&x, shard_rows);
    RidgeSolver sharded(&source);
    const RidgeSolution solution = sharded.Solve(responses, 0.5);
    ASSERT_TRUE(solution.ok);
    ExpectBitwiseEqual(reference.coefficients, solution.coefficients);
    ExpectBitwiseEqual(reference.bias, solution.bias);
  }
}

TEST(ShardedRidgeTest, MeanMatchesDenseBitwise) {
  const Matrix x = RandomMatrix(29, 5, 13);
  RidgeSolver dense(&x);
  for (int shard_rows : AdversarialShardSizes(29)) {
    DenseMatrixShardSource source(&x, shard_rows);
    RidgeSolver sharded(&source);
    ExpectBitwiseEqual(dense.mean(), sharded.mean());
  }
}

TEST(ShardedRidgeTest, AlphaSweepReusesStreamedGram) {
  const Matrix x = RandomMatrix(23, 6, 14);
  const Matrix responses = RandomMatrix(23, 2, 15);
  RidgeSolver dense(&x, GramSide::kPrimal);
  DenseMatrixShardSource source(&x, 5);
  RidgeSolver sharded(&source);
  for (double alpha : {0.01, 0.1, 1.0, 10.0}) {
    const RidgeSolution reference = dense.Solve(responses, alpha);
    const RidgeSolution solution = sharded.Solve(responses, alpha);
    ASSERT_TRUE(reference.ok);
    ASSERT_TRUE(solution.ok);
    ExpectBitwiseEqual(reference.coefficients, solution.coefficients);
    ExpectBitwiseEqual(reference.bias, solution.bias);
  }
}

TEST(ShardedRidgeTest, LsqrMatchesDenseBitwise) {
  const Matrix x = RandomMatrix(41, 7, 16);
  const Matrix responses = RandomMatrix(41, 3, 17);
  RidgeSolver dense(&x);
  RidgeSolveOptions options;
  options.method = RidgeMethod::kLsqr;
  const RidgeSolution reference = dense.Solve(responses, 0.5, options);
  ASSERT_TRUE(reference.ok);
  for (int shard_rows : AdversarialShardSizes(41)) {
    DenseMatrixShardSource source(&x, shard_rows);
    RidgeSolver sharded(&source);
    const RidgeSolution solution = sharded.Solve(responses, 0.5, options);
    ASSERT_TRUE(solution.ok);
    ExpectBitwiseEqual(reference.coefficients, solution.coefficients);
    ExpectBitwiseEqual(reference.bias, solution.bias);
  }
}

TEST(ShardedRidgeTest, SparseLsqrMatchesOperatorBitwise) {
  const SparseMatrix x = RandomSparse(700, 19, 18);
  const Matrix responses = RandomMatrix(700, 2, 19);
  const SparseOperator reference_op(&x);
  RidgeSolver reference_solver(&reference_op);
  const RidgeSolution reference = reference_solver.Solve(responses, 1.0);
  ASSERT_TRUE(reference.ok);
  for (int shard_rows : AdversarialShardSizes(700)) {
    SparseMatrixShardSource source(&x, shard_rows);
    RidgeSolver sharded(&source);
    // kAuto on a sparse shard stream must route to LSQR by itself.
    const RidgeSolution solution = sharded.Solve(responses, 1.0);
    ASSERT_TRUE(solution.ok);
    ExpectBitwiseEqual(reference.coefficients, solution.coefficients);
    ExpectBitwiseEqual(reference.bias, solution.bias);
  }
}

TEST(ShardedRidgeTest, ResultsIndependentOfThreadCount) {
  const Matrix x = RandomMatrix(67, 8, 20);
  const Matrix responses = RandomMatrix(67, 3, 21);
  const int saved = GlobalThreadCount();
  Matrix coefficients[2];
  for (int pass = 0; pass < 2; ++pass) {
    SetGlobalThreadCount(pass == 0 ? 1 : 4);
    DenseMatrixShardSource source(&x, 13);
    RidgeSolver sharded(&source);
    const RidgeSolution solution = sharded.Solve(responses, 0.25);
    ASSERT_TRUE(solution.ok);
    coefficients[pass] = solution.coefficients;
  }
  SetGlobalThreadCount(saved);
  ExpectBitwiseEqual(coefficients[0], coefficients[1]);
}

// --- Whole-model agreement through FitSrda. ---

TEST(ShardedRidgeTest, FitSrdaMatchesInRamModel) {
  const Matrix x = RandomMatrix(53, 6, 22);
  const std::vector<int> labels = RandomLabels(53, 3, 23);
  SrdaOptions options;
  options.alpha = 0.7;
  const SrdaModel reference = FitSrda(x, labels, 3, options);
  ASSERT_TRUE(reference.converged);
  for (int shard_rows : AdversarialShardSizes(53)) {
    DenseMatrixShardSource source(&x, shard_rows);
    RidgeSolver sharded(&source);
    const SrdaModel model = FitSrda(&sharded, labels, 3, options);
    ASSERT_TRUE(model.converged);
    ExpectBitwiseEqual(reference.embedding.projection(),
                       model.embedding.projection());
    ExpectBitwiseEqual(reference.embedding.bias(), model.embedding.bias());
  }
}

// --- RowShardReader: file streams reassemble the one-shot readers. ---

TEST(RowShardReaderTest, LibSvmShardsReassembleOneShotReader) {
  const std::string path = TempPath("shards.libsvm");
  {
    std::ofstream out(path);
    Rng rng(24);
    for (int i = 0; i < 9; ++i) {
      out << (i % 2 == 0 ? 7 : 3);  // raw labels sort to {3, 7}
      for (int j = 0; j < 5; ++j) {
        if (rng.NextDouble() < 0.5) {
          out << " " << j + 1 << ":" << rng.NextInt(-4, 4);
        }
      }
      out << "\n";
    }
  }
  const SparseDataset oneshot = ReadLibSvmFile(path, 5);
  RowShardReaderOptions options;
  options.shard_rows = 4;
  options.num_features = 5;
  RowShardReader reader(path, RowStreamFormat::kLibSvm, options);
  EXPECT_EQ(reader.rows(), 9);
  EXPECT_EQ(reader.cols(), 5);
  EXPECT_EQ(reader.num_classes(), oneshot.num_classes);
  EXPECT_EQ(reader.labels(), oneshot.labels);
  EXPECT_EQ(reader.raw_labels(), oneshot.raw_labels);
  Matrix assembled(9, 5);
  RowShard shard;
  while (reader.Next(&shard)) {
    ASSERT_NE(shard.sparse, nullptr);
    const Matrix block = shard.sparse->ToDense();
    for (int i = 0; i < block.rows(); ++i) {
      for (int j = 0; j < 5; ++j) {
        assembled(shard.first_row + i, j) = block(i, j);
      }
    }
  }
  ExpectBitwiseEqual(oneshot.features.ToDense(), assembled);
  EXPECT_GT(reader.bytes_streamed(), 0);
  EXPECT_GT(reader.peak_shard_bytes(), 0);
  std::remove(path.c_str());
}

TEST(RowShardReaderTest, CsvShardsReassembleOneShotReader) {
  const std::string path = TempPath("shards.csv");
  DenseDataset dataset;
  dataset.features = RandomMatrix(11, 4, 25);
  dataset.labels = RandomLabels(11, 3, 26);
  dataset.num_classes = 3;
  WriteDenseCsvFile(dataset, path);
  const DenseDataset oneshot = ReadDenseCsvFile(path);
  RowShardReaderOptions options;
  options.shard_rows = 3;
  RowShardReader reader(path, RowStreamFormat::kCsv, options);
  EXPECT_EQ(reader.labels(), oneshot.labels);
  EXPECT_EQ(reader.raw_labels(), oneshot.raw_labels);
  Matrix assembled(11, 4);
  RowShard shard;
  while (reader.Next(&shard)) {
    ASSERT_NE(shard.dense, nullptr);
    for (int i = 0; i < shard.dense->rows(); ++i) {
      for (int j = 0; j < 4; ++j) {
        assembled(shard.first_row + i, j) = (*shard.dense)(i, j);
      }
    }
  }
  ExpectBitwiseEqual(oneshot.features, assembled);
  std::remove(path.c_str());
}

TEST(RowShardReaderTest, BinaryShardsReassembleOneShotReader) {
  const std::string path = TempPath("shards.srdb");
  DenseDataset dataset;
  dataset.features = RandomMatrix(10, 6, 27);
  dataset.labels = RandomLabels(10, 2, 28);
  dataset.num_classes = 2;
  dataset.raw_labels = {4, 9};
  WriteDenseBinaryFile(dataset, path);
  const DenseDataset oneshot = ReadDenseBinaryFile(path);
  RowShardReaderOptions options;
  options.shard_rows = 4;
  RowShardReader reader(path, RowStreamFormat::kBinary, options);
  EXPECT_EQ(reader.labels(), oneshot.labels);
  EXPECT_EQ(reader.raw_labels(), oneshot.raw_labels);
  Matrix assembled(10, 6);
  RowShard shard;
  while (reader.Next(&shard)) {
    ASSERT_NE(shard.dense, nullptr);
    for (int i = 0; i < shard.dense->rows(); ++i) {
      for (int j = 0; j < 6; ++j) {
        assembled(shard.first_row + i, j) = (*shard.dense)(i, j);
      }
    }
  }
  ExpectBitwiseEqual(oneshot.features, assembled);
  std::remove(path.c_str());
}

TEST(RowShardReaderTest, MmapShardsBitwiseEqualReadShards) {
  // The binary reader serves shards straight out of an mmap by default;
  // they must be bitwise identical to the seekg+read fallback, at shard
  // sizes that do and do not divide the row count.
  const std::string path = TempPath("mmap.srdb");
  DenseDataset dataset;
  dataset.features = RandomMatrix(23, 5, 33);
  dataset.labels = RandomLabels(23, 2, 34);
  dataset.num_classes = 2;
  WriteDenseBinaryFile(dataset, path);
  for (int shard_rows : {1, 7, 23}) {
    RowShardReaderOptions mapped_options;
    mapped_options.shard_rows = shard_rows;
    RowShardReader mapped(path, RowStreamFormat::kBinary, mapped_options);
    EXPECT_TRUE(mapped.mmap_active());
    RowShardReaderOptions read_options;
    read_options.shard_rows = shard_rows;
    read_options.use_mmap = false;
    RowShardReader unmapped(path, RowStreamFormat::kBinary, read_options);
    EXPECT_FALSE(unmapped.mmap_active());
    RowShard mapped_shard;
    RowShard unmapped_shard;
    while (mapped.Next(&mapped_shard)) {
      ASSERT_TRUE(unmapped.Next(&unmapped_shard));
      ASSERT_EQ(mapped_shard.first_row, unmapped_shard.first_row);
      ASSERT_NE(mapped_shard.dense, nullptr);
      ASSERT_NE(unmapped_shard.dense, nullptr);
      ExpectBitwiseEqual(*mapped_shard.dense, *unmapped_shard.dense);
    }
    EXPECT_FALSE(unmapped.Next(&unmapped_shard));
    EXPECT_EQ(mapped.bytes_streamed(), unmapped.bytes_streamed());
  }
  std::remove(path.c_str());
}

TEST(RowShardReaderTest, FileStreamTrainsIdenticalToInRamFit) {
  const std::string path = TempPath("train.csv");
  DenseDataset dataset;
  dataset.features = RandomMatrix(31, 5, 29);
  dataset.labels = RandomLabels(31, 3, 30);
  dataset.num_classes = 3;
  WriteDenseCsvFile(dataset, path);
  const DenseDataset loaded = ReadDenseCsvFile(path);
  SrdaOptions options;
  const SrdaModel reference =
      FitSrda(loaded.features, loaded.labels, loaded.num_classes, options);
  ASSERT_TRUE(reference.converged);
  RowShardReaderOptions reader_options;
  reader_options.shard_rows = 7;
  RowShardReader reader(path, RowStreamFormat::kCsv, reader_options);
  RidgeSolver sharded(&reader);
  const SrdaModel model =
      FitSrda(&sharded, reader.labels(), reader.num_classes(), options);
  ASSERT_TRUE(model.converged);
  ExpectBitwiseEqual(reference.embedding.projection(),
                     model.embedding.projection());
  ExpectBitwiseEqual(reference.embedding.bias(), model.embedding.bias());
  std::remove(path.c_str());
}

// --- IncrementalSrda bulk tail: AddShard then AddSample. ---

TEST(IncrementalShardTest, AddShardMatchesAddSampleToTolerance) {
  const int n = 6;
  const int c = 3;
  const Matrix x = RandomMatrix(40, n, 31);
  const std::vector<int> labels = RandomLabels(40, c, 32);
  IncrementalSrda by_sample(n, c, 0.5);
  IncrementalSrda by_shard(n, c, 0.5);
  for (int i = 0; i < 30; ++i) {
    Vector row(n);
    for (int j = 0; j < n; ++j) row[j] = x(i, j);
    by_sample.AddSample(row, labels[static_cast<size_t>(i)]);
  }
  // Bulk-load the same 30 rows in two uneven shards.
  Matrix shard_a(13, n);
  Matrix shard_b(17, n);
  std::vector<int> labels_a(labels.begin(), labels.begin() + 13);
  std::vector<int> labels_b(labels.begin() + 13, labels.begin() + 30);
  for (int i = 0; i < 13; ++i) {
    for (int j = 0; j < n; ++j) shard_a(i, j) = x(i, j);
  }
  for (int i = 0; i < 17; ++i) {
    for (int j = 0; j < n; ++j) shard_b(i, j) = x(13 + i, j);
  }
  by_shard.AddShard(shard_a, labels_a);
  by_shard.AddShard(shard_b, labels_b);
  // Online tail: both streams keep accepting single samples afterwards.
  for (int i = 30; i < 40; ++i) {
    Vector row(n);
    for (int j = 0; j < n; ++j) row[j] = x(i, j);
    by_sample.AddSample(row, labels[static_cast<size_t>(i)]);
    by_shard.AddSample(row, labels[static_cast<size_t>(i)]);
  }
  ASSERT_TRUE(by_sample.ready());
  ASSERT_TRUE(by_shard.ready());
  EXPECT_EQ(by_sample.num_samples(), by_shard.num_samples());
  const LinearEmbedding a = by_sample.Solve();
  const LinearEmbedding b = by_shard.Solve();
  ASSERT_EQ(a.projection().rows(), b.projection().rows());
  ASSERT_EQ(a.projection().cols(), b.projection().cols());
  EXPECT_LE(MaxAbsDiff(a.projection(), b.projection()), 1e-8);
  for (int j = 0; j < a.bias().size(); ++j) {
    EXPECT_NEAR(a.bias()[j], b.bias()[j], 1e-8);
  }
}

TEST(IncrementalShardDeathTest, RejectsMismatchedLabels) {
  IncrementalSrda trainer(3, 2, 1.0);
  Matrix shard(2, 3);
  EXPECT_DEATH(trainer.AddShard(shard, {0}), "label count mismatch");
}

}  // namespace
}  // namespace srda
