// Tests for PCA and the Fisherfaces (PCA+LDA) pipeline.

#include <cmath>

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/fisherfaces.h"
#include "core/lda.h"
#include "core/pca.h"
#include "matrix/blas.h"

namespace srda {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

TEST(PcaTest, RecoversDominantDirection) {
  // Data spread mostly along (1, 1)/sqrt(2).
  Rng rng(1);
  Matrix x(200, 2);
  for (int i = 0; i < 200; ++i) {
    const double major = rng.NextGaussian() * 5.0;
    const double minor = rng.NextGaussian() * 0.5;
    x(i, 0) = (major + minor) / std::sqrt(2.0);
    x(i, 1) = (major - minor) / std::sqrt(2.0);
  }
  PcaOptions options;
  options.max_components = 1;
  const PcaModel model = FitPca(x, options);
  ASSERT_TRUE(model.converged);
  const Vector direction = model.embedding.projection().Col(0);
  EXPECT_NEAR(std::fabs(direction[0]), 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_NEAR(std::fabs(direction[1]), 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_GT(model.captured_variance_ratio, 0.95);
}

TEST(PcaTest, ComponentsOrthonormal) {
  Rng rng(2);
  const Matrix x = RandomMatrix(50, 8, &rng);
  const PcaModel model = FitPca(x);
  ASSERT_TRUE(model.converged);
  const Matrix gram = Gram(model.embedding.projection());
  EXPECT_LT(MaxAbsDiff(gram, Matrix::Identity(gram.rows())), 1e-8);
}

TEST(PcaTest, ExplainedVarianceDescendsAndSums) {
  Rng rng(3);
  const Matrix x = RandomMatrix(60, 6, &rng);
  const PcaModel model = FitPca(x);
  ASSERT_TRUE(model.converged);
  double variance_sum = 0.0;
  for (int k = 0; k < model.explained_variance.size(); ++k) {
    if (k > 0) {
      EXPECT_LE(model.explained_variance[k], model.explained_variance[k - 1]);
    }
    variance_sum += model.explained_variance[k];
  }
  // Total variance equals the trace of the sample covariance.
  Matrix centered = x;
  SubtractRowVector(ColumnMeans(x), &centered);
  const Matrix cov = Gram(centered);
  double trace = 0.0;
  for (int j = 0; j < 6; ++j) trace += cov(j, j) / (x.rows() - 1);
  EXPECT_NEAR(variance_sum, trace, 1e-8 * trace);
  EXPECT_NEAR(model.captured_variance_ratio, 1.0, 1e-12);
}

TEST(PcaTest, VarianceToKeepTruncates) {
  Rng rng(4);
  Matrix x(100, 5);
  for (int i = 0; i < 100; ++i) {
    x(i, 0) = rng.NextGaussian() * 10.0;  // Dominant direction.
    for (int j = 1; j < 5; ++j) x(i, j) = rng.NextGaussian() * 0.1;
  }
  PcaOptions options;
  options.variance_to_keep = 0.95;
  const PcaModel model = FitPca(x, options);
  ASSERT_TRUE(model.converged);
  EXPECT_EQ(model.embedding.output_dim(), 1);
  EXPECT_GE(model.captured_variance_ratio, 0.95);
}

TEST(PcaTest, EmbeddingIsCentered) {
  Rng rng(5);
  Matrix x = RandomMatrix(40, 7, &rng);
  for (int i = 0; i < 40; ++i) x(i, 2) += 100.0;  // Large offset.
  const PcaModel model = FitPca(x);
  const Matrix embedded = model.embedding.Transform(x);
  const Vector mean = ColumnMeans(embedded);
  for (int j = 0; j < mean.size(); ++j) EXPECT_NEAR(mean[j], 0.0, 1e-7);
}

TEST(PcaTest, MaxComponentsRespected) {
  Rng rng(6);
  const Matrix x = RandomMatrix(30, 10, &rng);
  PcaOptions options;
  options.max_components = 3;
  const PcaModel model = FitPca(x, options);
  EXPECT_EQ(model.embedding.output_dim(), 3);
}

TEST(PcaDeathTest, SingleSampleAborts) {
  EXPECT_DEATH(FitPca(Matrix(1, 3)), "two samples");
}

TEST(FisherfacesTest, ClassifiesBlobs) {
  Rng rng(7);
  const int per_class = 20;
  Matrix x(3 * per_class, 30);
  std::vector<int> labels;
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < 30; ++j) {
        x(row, j) = (j % 3 == k ? 2.0 : 0.0) + rng.NextGaussian();
      }
      labels.push_back(k);
    }
  }
  const FisherfacesModel model = FitFisherfaces(x, labels, 3);
  ASSERT_TRUE(model.converged);
  EXPECT_EQ(model.num_directions, 2);
  const Matrix embedded = model.embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, 3);
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), labels), 0.05);
}

TEST(FisherfacesTest, DefaultKeepsMMinusCComponents) {
  Rng rng(8);
  const int m = 24;
  Matrix x = RandomMatrix(m, 50, &rng);
  std::vector<int> labels;
  for (int i = 0; i < m; ++i) labels.push_back(i % 3);
  const FisherfacesModel model = FitFisherfaces(x, labels, 3);
  ASSERT_TRUE(model.converged);
  // PCA rank is at most m - 1; the classical recipe asks for m - c.
  EXPECT_LE(model.pca_components_used, m - 3);
  EXPECT_GT(model.pca_components_used, 0);
}

TEST(FisherfacesTest, ComposedEmbeddingMatchesTwoStage) {
  Rng rng(9);
  const int m = 30;
  Matrix x = RandomMatrix(m, 12, &rng);
  std::vector<int> labels;
  for (int i = 0; i < m; ++i) {
    labels.push_back(i % 2);
    x(i, 0) += 3.0 * (i % 2);
  }
  FisherfacesOptions options;
  options.pca_components = 6;
  const FisherfacesModel composed = FitFisherfaces(x, labels, 2, options);
  ASSERT_TRUE(composed.converged);

  PcaOptions pca_options;
  pca_options.max_components = 6;
  const PcaModel pca = FitPca(x, pca_options);
  const Matrix reduced = pca.embedding.Transform(x);
  const LdaModel lda = FitLda(reduced, labels, 2);
  const Matrix two_stage = lda.embedding.Transform(reduced);
  const Matrix one_stage = composed.embedding.Transform(x);
  EXPECT_LT(MaxAbsDiff(two_stage, one_stage), 1e-9);
}

TEST(FisherfacesTest, HighDimensionalSingularCase) {
  // n >> m: direct LDA needs the SVD trick; PCA+LDA is the classical
  // alternative and must behave equivalently well.
  Rng rng(10);
  const int n = 200;
  Matrix x(18, n);
  std::vector<int> labels;
  for (int i = 0; i < 18; ++i) {
    for (int j = 0; j < n; ++j) {
      x(i, j) = 1.5 * (i / 6) + rng.NextGaussian();
    }
    labels.push_back(i / 6);
  }
  const FisherfacesModel model = FitFisherfaces(x, labels, 3);
  ASSERT_TRUE(model.converged);
  const Matrix embedded = model.embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, 3);
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), labels), 0.2);
}

}  // namespace
}  // namespace srda
