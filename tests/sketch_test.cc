// Tests for randomized row sketches (linalg/sketch.h) and the two solver
// modes built on them: sketch-preconditioned LSQR and the pure sketch-solve.
//
// The determinism contract mirrors the sharded suite: the sketch operator is
// a pure function of (seed, global row), so the same seed must reproduce the
// sketch BITWISE across calls, thread counts, and shard sizes — and a
// preconditioned LsqrBatch run must be bitwise identical at any thread
// count. Accuracy properties (precond-vs-plain agreement, the sketch-solve
// error bound) are checked on an ill-conditioned TextGenerator corpus and
// against exact normal-equation solves.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "dataset/text_generator.h"
#include "linalg/cholesky.h"
#include "linalg/linear_operator.h"
#include "linalg/lsqr.h"
#include "linalg/sharded_operator.h"
#include "linalg/sketch.h"
#include "matrix/blas.h"
#include "matrix/matrix.h"
#include "solver/ridge_solver.h"
#include "sparse/sparse_matrix.h"

namespace srda {
namespace {

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng.NextGaussian();
  }
  return m;
}

// ~25% fill with a few empty rows so the sparse kernel sees rows that hash
// to a bucket but contribute nothing.
SparseMatrix RandomSparse(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  SparseMatrixBuilder builder(rows, cols);
  for (int i = 0; i < rows; ++i) {
    if (i % 11 == 3) continue;  // empty row
    for (int j = 0; j < cols; ++j) {
      if (rng.NextDouble() < 0.25) builder.Add(i, j, rng.NextGaussian());
    }
  }
  return std::move(builder).Build();
}

void ExpectBitwiseEqual(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(a(i, j), b(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

// The small ill-conditioned sparse corpus the accuracy tests share: heavy
// topic overlap and contamination push the term-term Gram's condition
// number up, which is exactly the regime preconditioning targets.
SparseDataset SmallTextCorpus() {
  TextGeneratorOptions options;
  options.num_topics = 4;
  options.docs_per_topic = 120;
  options.vocabulary_size = 100;
  options.topic_vocabulary_size = 30;
  options.mean_document_length = 60.0;
  options.seed = 11;
  return GenerateTextDataset(options);
}

// --- Sketch operator: reproducibility and shard invariance. ---

TEST(SketchTest, SameSeedReproducesBitwiseDifferentSeedDoesNot) {
  const Matrix x = RandomMatrix(57, 9, 1);
  for (SketchKind kind : {SketchKind::kCountSketch, SketchKind::kGaussian}) {
    SketchOptions options;
    options.sketch_rows = 23;
    options.kind = kind;
    options.seed = 42;
    const Matrix a = SketchRows(x, options);
    const Matrix b = SketchRows(x, options);
    ExpectBitwiseEqual(a, b);
    options.seed = 43;
    const Matrix c = SketchRows(x, options);
    EXPECT_GT(MaxAbsDiff(a, c), 0.0) << "seed must change the sketch";
  }
}

TEST(SketchTest, SparseSketchMatchesDenseSketchBitwise) {
  // The count-sketch kernels add each row's entries in column order with
  // the same sign, so sketching a sparse matrix must equal sketching its
  // densification bit for bit.
  const SparseMatrix x = RandomSparse(90, 13, 2);
  SketchOptions options;
  options.sketch_rows = 31;
  const Matrix dense = SketchRows(x.ToDense(), options);
  const Matrix sparse = SketchRows(x, options);
  ExpectBitwiseEqual(dense, sparse);
}

TEST(SketchTest, StreamedAccumulationMatchesOneShot) {
  const Matrix x = RandomMatrix(64, 7, 3);
  SketchOptions options;
  options.sketch_rows = 19;
  const Matrix oneshot = SketchRows(x, options);
  for (int block : {1, 5, 63, 64}) {
    Matrix streamed(options.sketch_rows, x.cols());
    for (int start = 0; start < x.rows(); start += block) {
      const int count = std::min(block, x.rows() - start);
      SketchAccumulate(x.Block(start, 0, count, x.cols()), start, options,
                       &streamed);
    }
    ExpectBitwiseEqual(oneshot, streamed);
  }
}

TEST(SketchTest, ShardedSketchMatchesInRamBitwise) {
  const Matrix dense = RandomMatrix(70, 11, 4);
  const SparseMatrix sparse = RandomSparse(70, 11, 5);
  SketchOptions options;
  options.sketch_rows = 29;
  const Matrix dense_reference = SketchRows(dense, options);
  const Matrix sparse_reference = SketchRows(sparse, options);
  for (int shard_rows : {1, 7, 69, 70}) {
    DenseMatrixShardSource dense_source(&dense, shard_rows);
    ExpectBitwiseEqual(dense_reference, SketchShards(&dense_source, options));
    SparseMatrixShardSource sparse_source(&sparse, shard_rows);
    ExpectBitwiseEqual(sparse_reference,
                       SketchShards(&sparse_source, options));
  }
}

TEST(SketchTest, SketchIndependentOfThreadCount) {
  const Matrix x = RandomMatrix(83, 17, 6);
  SketchOptions options;
  options.sketch_rows = 37;
  const int saved = GlobalThreadCount();
  Matrix sketches[2];
  for (int pass = 0; pass < 2; ++pass) {
    SetGlobalThreadCount(pass == 0 ? 1 : 4);
    sketches[pass] = SketchRows(x, options);
  }
  SetGlobalThreadCount(saved);
  ExpectBitwiseEqual(sketches[0], sketches[1]);
}

TEST(SketchTest, SketchOnesMatchesSketchOfOnesColumn) {
  Matrix ones(45, 1);
  for (int i = 0; i < 45; ++i) ones(i, 0) = 1.0;
  SketchOptions options;
  options.sketch_rows = 16;
  const Matrix via_matrix = SketchRows(ones, options);
  const Vector via_helper = SketchOnes(45, options);
  ASSERT_EQ(via_helper.size(), 16);
  for (int t = 0; t < 16; ++t) {
    EXPECT_EQ(via_matrix(t, 0), via_helper[t]) << "at " << t;
  }
}

TEST(SketchTest, GramEstimateConcentrates) {
  // E[(SX)^T (SX)] = X^T X; with s comfortably above n the count-sketch
  // estimate should land within a modest relative error — enough for a
  // preconditioner, which is all we ask of it.
  const Matrix x = RandomMatrix(400, 6, 7);
  const Matrix exact = MultiplyTransposedA(x, x);
  SketchOptions options;
  options.sketch_rows = 200;
  const Matrix sketch = SketchRows(x, options);
  const Matrix estimate = MultiplyTransposedA(sketch, sketch);
  double exact_norm = 0.0;
  for (int i = 0; i < exact.rows(); ++i) {
    for (int j = 0; j < exact.cols(); ++j) {
      exact_norm = std::max(exact_norm, std::abs(exact(i, j)));
    }
  }
  EXPECT_LT(MaxAbsDiff(exact, estimate), 0.5 * exact_norm);
}

TEST(SketchTest, FactorSketchedGramMatchesDirectFactorization) {
  const Matrix sketch = RandomMatrix(40, 8, 8);
  Cholesky via_helper;
  ASSERT_TRUE(FactorSketchedGram(sketch, 0.75, &via_helper));
  Matrix gram = MultiplyTransposedA(sketch, sketch);
  for (int i = 0; i < gram.rows(); ++i) gram(i, i) += 0.75;
  Cholesky direct;
  ASSERT_TRUE(direct.Factor(gram));
  ExpectBitwiseEqual(direct.factor(), via_helper.factor());
}

// --- Preconditioned LSQR: exactness, batching, determinism. ---

TEST(PrecondLsqrTest, PreconditionedSolveMatchesNormalEquations) {
  // With the iteration budget uncapped, the preconditioned LSQR solve must
  // land on the same ridge solution the direct factorization produces.
  const Matrix x = RandomMatrix(120, 10, 9);
  const Matrix b = RandomMatrix(120, 3, 10);
  const DenseOperator a(&x);
  const double alpha = 0.1;
  Matrix gram = MultiplyTransposedA(x, x);
  for (int i = 0; i < gram.rows(); ++i) gram(i, i) += alpha;
  Cholesky exact_chol;
  ASSERT_TRUE(exact_chol.Factor(gram));
  const Matrix exact = exact_chol.SolveMatrix(MultiplyTransposedA(x, b));

  SketchOptions sketch_options;
  sketch_options.sketch_rows = 40;
  const Matrix sketch = SketchRows(x, sketch_options);
  Cholesky precond;
  ASSERT_TRUE(FactorSketchedGram(sketch, alpha, &precond));

  LsqrOptions options;
  options.max_iterations = 200;
  options.damp = std::sqrt(alpha);
  options.atol = 1e-12;
  options.btol = 1e-12;
  options.right_precond = &precond.factor();
  const std::vector<LsqrResult> results = LsqrBatch(a, b, options);
  ASSERT_EQ(results.size(), 3u);
  for (int j = 0; j < 3; ++j) {
    ASSERT_TRUE(results[static_cast<size_t>(j)].converged);
    for (int i = 0; i < x.cols(); ++i) {
      EXPECT_NEAR(results[static_cast<size_t>(j)].x[i], exact(i, j), 1e-7);
    }
  }
}

TEST(PrecondLsqrTest, BatchMatchesSerialBitwise) {
  // The batched preconditioned recurrence must reproduce the serial one
  // exactly: the matrix triangular solves mirror the vector routines'
  // arithmetic per column.
  const Matrix x = RandomMatrix(80, 9, 11);
  const Matrix b = RandomMatrix(80, 4, 12);
  const DenseOperator a(&x);
  SketchOptions sketch_options;
  sketch_options.sketch_rows = 36;
  const Matrix sketch = SketchRows(x, sketch_options);
  Cholesky precond;
  ASSERT_TRUE(FactorSketchedGram(sketch, 0.3, &precond));
  LsqrOptions options;
  options.max_iterations = 60;
  options.damp = std::sqrt(0.3);
  options.right_precond = &precond.factor();
  const std::vector<LsqrResult> batch = LsqrBatch(a, b, options);
  for (int j = 0; j < b.cols(); ++j) {
    const LsqrResult serial = Lsqr(a, b.Col(j), options);
    const LsqrResult& batched = batch[static_cast<size_t>(j)];
    EXPECT_EQ(serial.iterations, batched.iterations);
    ASSERT_EQ(serial.x.size(), batched.x.size());
    for (int i = 0; i < serial.x.size(); ++i) {
      EXPECT_EQ(serial.x[i], batched.x[i]) << "rhs " << j << " entry " << i;
    }
  }
}

TEST(PrecondLsqrTest, PreconditionedBatchIndependentOfThreadCount) {
  const SparseDataset corpus = SmallTextCorpus();
  const Matrix responses =
      RandomMatrix(corpus.features.rows(), 3, 13);
  const int saved = GlobalThreadCount();
  Matrix coefficients[2];
  for (int pass = 0; pass < 2; ++pass) {
    SetGlobalThreadCount(pass == 0 ? 1 : 4);
    const SparseOperator data(&corpus.features);
    RidgeSolver solver(&data);
    SketchConfig config;
    config.mode = SketchMode::kPrecondition;
    config.sketch_rows = 300;
    solver.SetSketch(config);
    RidgeSolveOptions options;
    options.method = RidgeMethod::kLsqr;
    options.lsqr_iterations = 100;
    const RidgeSolution solution = solver.Solve(responses, 1e-3, options);
    ASSERT_TRUE(solution.ok);
    coefficients[pass] = solution.coefficients;
  }
  SetGlobalThreadCount(saved);
  ExpectBitwiseEqual(coefficients[0], coefficients[1]);
}

TEST(PrecondLsqrTest, AgreesWithPlainLsqrOnIllConditionedCorpus) {
  // On the ill-conditioned text Gram both runs get a generous budget and
  // tight tolerances; the preconditioned run must reach the same solution
  // in strictly fewer total iterations.
  const SparseDataset corpus = SmallTextCorpus();
  const Matrix responses =
      RandomMatrix(corpus.features.rows(), 3, 14);
  const double alpha = 1e-3;
  RidgeSolveOptions options;
  options.method = RidgeMethod::kLsqr;
  options.lsqr_iterations = 400;
  options.lsqr_atol = 1e-10;
  options.lsqr_btol = 1e-10;

  const SparseOperator plain_data(&corpus.features);
  RidgeSolver plain(&plain_data);
  const RidgeSolution plain_solution = plain.Solve(responses, alpha, options);
  ASSERT_TRUE(plain_solution.ok);

  const SparseOperator precond_data(&corpus.features);
  RidgeSolver preconditioned(&precond_data);
  SketchConfig config;
  config.mode = SketchMode::kPrecondition;
  config.sketch_rows = 400;
  preconditioned.SetSketch(config);
  const RidgeSolution precond_solution =
      preconditioned.Solve(responses, alpha, options);
  ASSERT_TRUE(precond_solution.ok);
  for (const RidgeRhsDiagnostics& diag : precond_solution.lsqr) {
    EXPECT_TRUE(diag.converged);
  }

  // Same solution (both converged to tight tolerances)...
  EXPECT_LT(MaxAbsDiff(plain_solution.coefficients,
                       precond_solution.coefficients),
            1e-5);
  EXPECT_LT(MaxAbsDiff(plain_solution.bias, precond_solution.bias), 1e-5);
  // ...in strictly fewer iterations.
  EXPECT_LT(precond_solution.total_lsqr_iterations,
            plain_solution.total_lsqr_iterations);
}

TEST(PrecondLsqrTest, ShardedSketchSolveMatchesInRamBitwise) {
  // The sharded binding sketches while streaming; the preconditioned solve
  // must be bitwise identical to the dense-bound solver on the same data.
  const Matrix x = RandomMatrix(96, 8, 15);
  const Matrix responses = RandomMatrix(96, 2, 16);
  SketchConfig config;
  config.mode = SketchMode::kPrecondition;
  config.sketch_rows = 32;
  RidgeSolveOptions options;
  options.method = RidgeMethod::kLsqr;
  options.lsqr_iterations = 80;

  RidgeSolver dense(&x);
  dense.SetSketch(config);
  const RidgeSolution reference = dense.Solve(responses, 0.5, options);
  ASSERT_TRUE(reference.ok);
  for (int shard_rows : {1, 17, 95, 96}) {
    DenseMatrixShardSource source(&x, shard_rows);
    RidgeSolver sharded(&source);
    sharded.SetSketch(config);
    const RidgeSolution solution = sharded.Solve(responses, 0.5, options);
    ASSERT_TRUE(solution.ok);
    ExpectBitwiseEqual(reference.coefficients, solution.coefficients);
  }
}

// --- Pure sketch-solve: the error bound is rigorous. ---

TEST(SketchSolveTest, ErrorBoundHoldsAgainstExactSolution) {
  const Matrix x = RandomMatrix(150, 8, 17);
  const Matrix responses = RandomMatrix(150, 3, 18);
  const double alpha = 0.5;

  RidgeSolver exact(&x);
  const RidgeSolution exact_solution = exact.Solve(responses, alpha);
  ASSERT_TRUE(exact_solution.ok);

  RidgeSolver sketched(&x);
  SketchConfig config;
  config.mode = SketchMode::kSolve;
  config.sketch_rows = 64;
  sketched.SetSketch(config);
  const RidgeSolution sketch_solution = sketched.Solve(responses, alpha);
  ASSERT_TRUE(sketch_solution.ok);
  ASSERT_EQ(sketch_solution.sketch_error_bounds.size(), 3u);
  ASSERT_EQ(sketch_solution.lsqr.size(), 0u);
  EXPECT_EQ(sketch_solution.total_lsqr_iterations, 0);

  for (int j = 0; j < 3; ++j) {
    double distance_sq = 0.0;
    for (int i = 0; i < x.cols(); ++i) {
      const double diff = sketch_solution.coefficients(i, j) -
                          exact_solution.coefficients(i, j);
      distance_sq += diff * diff;
    }
    const double distance = std::sqrt(distance_sq);
    const double bound =
        sketch_solution.sketch_error_bounds[static_cast<size_t>(j)];
    EXPECT_TRUE(std::isfinite(bound));
    EXPECT_LE(distance, bound * (1.0 + 1e-9) + 1e-12)
        << "rhs " << j << ": bound must dominate the true error";
    // Sanity only — the bound scales as 1/alpha and is loose on random
    // data; BoundShrinksAsSketchGrows checks it actually tightens.
    EXPECT_LT(bound, 1e6);
  }
}

TEST(SketchSolveTest, BoundShrinksAsSketchGrows) {
  const Matrix x = RandomMatrix(300, 6, 19);
  const Matrix responses = RandomMatrix(300, 2, 20);
  double previous = -1.0;
  for (int sketch_rows : {24, 300}) {
    RidgeSolver solver(&x);
    SketchConfig config;
    config.mode = SketchMode::kSolve;
    config.sketch_rows = sketch_rows;
    solver.SetSketch(config);
    const RidgeSolution solution = solver.Solve(responses, 0.25);
    ASSERT_TRUE(solution.ok);
    double total = 0.0;
    for (double bound : solution.sketch_error_bounds) total += bound;
    if (previous >= 0.0) {
      EXPECT_LT(total, previous)
          << "a bigger sketch must tighten the bound on this instance";
    }
    previous = total;
  }
}

TEST(SketchSolveDeathTest, RequiresPositiveAlpha) {
  const Matrix x = RandomMatrix(20, 4, 21);
  const Matrix responses = RandomMatrix(20, 1, 22);
  RidgeSolver solver(&x);
  SketchConfig config;
  config.mode = SketchMode::kSolve;
  config.sketch_rows = 16;
  solver.SetSketch(config);
  EXPECT_DEATH(solver.Solve(responses, 0.0), "alpha");
}

}  // namespace
}  // namespace srda
