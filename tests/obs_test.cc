// Tests for the observability layer (src/obs): trace recording, per-thread
// buffer merging, metric atomicity, the JSON emitter/validator pair, and
// the phase-summary aggregation.
//
// The trace recorder and metrics registry are process-wide singletons, so
// every test starts from a clean slate via the fixture and restores the
// disabled state on exit (other test binaries assume tracing is off).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flops.h"
#include "common/parallel.h"
#include "gtest/gtest.h"
#include "linalg/lsqr.h"
#include "obs/event_log.h"
#include "obs/exporter.h"
#include "obs/http.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace srda {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
  }

  void TearDown() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
    SetGlobalThreadCount(0);
  }
};

int64_t CountByName(const std::vector<TraceEvent>& events,
                    const std::string& name) {
  int64_t count = 0;
  for (const TraceEvent& event : events) {
    if (name == event.name) ++count;
  }
  return count;
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  const int64_t before = TraceRecorder::Global().EventCount();
  for (int i = 0; i < 100; ++i) {
    TraceSpan span("noop");
    EXPECT_FALSE(span.recording());
    span.AddArg("flops", 1.0);  // must be dropped, not crash
  }
  EXPECT_EQ(TraceRecorder::Global().EventCount(), before);
}

TEST_F(ObsTest, RecordsCompleteSpansWithArgs) {
  TraceRecorder::Global().SetEnabled(true);
  {
    TraceSpan span("outer");
    ASSERT_TRUE(span.recording());
    span.AddArg("flops", 128.0);
    span.AddArg("n", 64.0);
    span.AddArg("dropped", 1.0);  // third arg is capped away
    TraceSpan inner("inner");
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().Collect();
  ASSERT_EQ(events.size(), 2u);

  // Buffers record in completion order: inner closes first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[1].num_args, 2);
  EXPECT_STREQ(events[1].arg_keys[0], "flops");
  EXPECT_EQ(events[1].arg_values[0], 128.0);
  EXPECT_GE(events[1].duration_ns, events[0].duration_ns);
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
}

TEST_F(ObsTest, NestingDepthRestoredAcrossSiblings) {
  TraceRecorder::Global().SetEnabled(true);
  {
    TraceSpan a("a");
    { TraceSpan child("a.child"); }
    { TraceSpan sibling("a.sibling"); }
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().Collect();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].depth, 1);  // a.child
  EXPECT_EQ(events[1].depth, 1);  // a.sibling, not 2
  EXPECT_EQ(events[2].depth, 0);  // a
}

TEST_F(ObsTest, MergesSpansAcrossPoolThreads) {
  SetGlobalThreadCount(4);
  TraceRecorder::Global().SetEnabled(true);
  TraceRecorder::Global().Clear();

  constexpr int kItems = 64;
  std::atomic<int> visited{0};
  ParallelFor(0, kItems, [&visited](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      TraceSpan span("work.item");
      visited.fetch_add(1, std::memory_order_relaxed);
    }
  });

  EXPECT_EQ(visited.load(), kItems);
  const std::vector<TraceEvent> events = TraceRecorder::Global().Collect();
  EXPECT_EQ(CountByName(events, "work.item"), kItems);
  // The pool instrumented its own dispatch too.
  EXPECT_EQ(CountByName(events, "pool.parallel_for"), 1);
  EXPECT_GT(CountByName(events, "pool.chunk"), 0);
}

TEST_F(ObsTest, ThreadsGetDistinctTids) {
  TraceRecorder::Global().SetEnabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] { TraceSpan span("tid.span"); });
  }
  for (std::thread& thread : threads) thread.join();

  std::vector<int> tids;
  for (const TraceEvent& event : TraceRecorder::Global().Collect()) {
    if (std::string(event.name) == "tid.span") tids.push_back(event.tid);
  }
  ASSERT_EQ(tids.size(), static_cast<size_t>(kThreads));
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

TEST_F(ObsTest, EventsSurviveThreadExit) {
  TraceRecorder::Global().SetEnabled(true);
  std::thread worker([] { TraceSpan span("short.lived"); });
  worker.join();
  // The thread retired its buffer on exit; the event must still be merged.
  const std::vector<TraceEvent> events = TraceRecorder::Global().Collect();
  EXPECT_EQ(CountByName(events, "short.lived"), 1);
}

TEST_F(ObsTest, CounterMatchesSingleThreadedSum) {
  Counter* counter = MetricsRegistry::Global().counter("test.atomicity");
  counter->Reset();

  constexpr int kItems = 4096;
  for (int i = 0; i < kItems; ++i) counter->Add(1.0);
  const double serial = counter->value();
  counter->Reset();

  SetGlobalThreadCount(4);
  ParallelFor(0, kItems, [counter](int begin, int end) {
    for (int i = begin; i < end; ++i) counter->Add(1.0);
  });
  EXPECT_EQ(counter->value(), serial);
  EXPECT_EQ(counter->value(), static_cast<double>(kItems));
  counter->Reset();
}

TEST_F(ObsTest, HistogramTracksCountSumMinMax) {
  Histogram* histogram = MetricsRegistry::Global().histogram("test.histogram");
  histogram->Reset();
  EXPECT_EQ(histogram->count(), 0);
  EXPECT_EQ(histogram->min(), 0.0);
  EXPECT_EQ(histogram->max(), 0.0);

  histogram->Observe(2.0);
  histogram->Observe(8.0);
  histogram->Observe(0.5);
  EXPECT_EQ(histogram->count(), 3);
  EXPECT_EQ(histogram->sum(), 10.5);
  EXPECT_EQ(histogram->min(), 0.5);
  EXPECT_EQ(histogram->max(), 8.0);
  EXPECT_DOUBLE_EQ(histogram->mean(), 3.5);
  histogram->Reset();
  EXPECT_EQ(histogram->count(), 0);
}

TEST_F(ObsTest, HistogramApproxQuantile) {
  Histogram* histogram = MetricsRegistry::Global().histogram("test.quantile");
  histogram->Reset();
  // Empty histogram: NaN at every q — a quantile must never be invented
  // from zero samples (callers check count() before printing).
  EXPECT_TRUE(std::isnan(histogram->ApproxQuantile(0.5)));
  EXPECT_TRUE(std::isnan(histogram->ApproxQuantile(0.0)));
  EXPECT_TRUE(std::isnan(histogram->ApproxQuantile(1.0)));

  // 100 observations spread over [1, 100]: quantiles land in the right
  // power-of-two bucket and are clamped to the observed range.
  for (int i = 1; i <= 100; ++i) {
    histogram->Observe(static_cast<double>(i));
  }
  EXPECT_GE(histogram->ApproxQuantile(0.0), 1.0);
  EXPECT_LE(histogram->ApproxQuantile(1.0), 100.0);
  const double p50 = histogram->ApproxQuantile(0.5);
  EXPECT_GE(p50, 32.0);   // true median 50.5 lives in bucket [32, 64)
  EXPECT_LT(p50, 64.0);
  const double p99 = histogram->ApproxQuantile(0.99);
  EXPECT_GE(p99, 64.0);   // rank-99 observation lives in bucket [64, 128)
  EXPECT_LE(p99, 100.0);  // but never beyond the observed max
  EXPECT_LE(histogram->ApproxQuantile(0.1), p50);
  histogram->Reset();

  // A single observation reports itself at every quantile.
  histogram->Observe(7.0);
  EXPECT_EQ(histogram->ApproxQuantile(0.0), 7.0);
  EXPECT_EQ(histogram->ApproxQuantile(0.5), 7.0);
  EXPECT_EQ(histogram->ApproxQuantile(1.0), 7.0);
  histogram->Reset();
}

TEST_F(ObsTest, RegistryResetKeepsPointersValid) {
  Counter* counter = MetricsRegistry::Global().counter("test.reset");
  counter->Add(7.0);
  MetricsRegistry::Global().ResetAll();
  EXPECT_EQ(counter->value(), 0.0);
  EXPECT_EQ(MetricsRegistry::Global().counter("test.reset"), counter);
  counter->Add(1.0);
  EXPECT_EQ(counter->value(), 1.0);
  counter->Reset();
}

TEST_F(ObsTest, WrittenJsonValidates) {
  TraceRecorder::Global().SetEnabled(true);
  {
    TraceSpan span("json.span");
    span.AddArg("flops", 42.0);
  }
  { TraceSpan span("json \"quoted\\name"); }  // must be escaped, not break

  std::ostringstream out;
  TraceRecorder::Global().WriteJson(out);
  std::string error;
  EXPECT_TRUE(ValidateTraceJson(out.str(), {"json.span"}, &error)) << error;
  EXPECT_FALSE(ValidateTraceJson(out.str(), {"absent.span"}, &error));

  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(TraceRecorder::Global().WriteJsonFile(path));
  std::ifstream input(path);
  std::ostringstream contents;
  contents << input.rdbuf();
  EXPECT_EQ(contents.str(), out.str());
  std::remove(path.c_str());
}

TEST_F(ObsTest, JsonParserRejectsMalformedDocuments) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson("", &value, &error));
  EXPECT_FALSE(ParseJson("{", &value, &error));
  EXPECT_FALSE(ParseJson("{\"a\":1,}", &value, &error));
  EXPECT_FALSE(ParseJson("{\"a\":1} extra", &value, &error));
  EXPECT_FALSE(ParseJson("{\"a\":1,\"a\":2}", &value, &error));  // dup key
  EXPECT_FALSE(ParseJson("[1,2", &value, &error));
  EXPECT_FALSE(ParseJson("nul", &value, &error));

  ASSERT_TRUE(ParseJson("{\"a\":[1,true,\"x\"],\"b\":-2.5e3}", &value, &error))
      << error;
  ASSERT_NE(value.Find("a"), nullptr);
  EXPECT_EQ(value.Find("a")->array.size(), 3u);
  EXPECT_EQ(value.Find("b")->number, -2500.0);

  EXPECT_FALSE(ValidateTraceJson("[]", {}, &error));  // root must be object
  EXPECT_FALSE(ValidateTraceJson("{\"traceEvents\":[]}", {}, &error));
  EXPECT_FALSE(ValidateTraceJson(
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\"}]}", {}, &error));
}

TEST_F(ObsTest, AggregateTraceComputesSelfTime) {
  std::vector<TraceEvent> events;
  TraceEvent outer;
  outer.name = "solve";
  outer.start_ns = 0;
  outer.duration_ns = 10'000'000;  // 10 ms
  outer.tid = 0;
  events.push_back(outer);

  TraceEvent inner;
  inner.name = "factor";
  inner.start_ns = 2'000'000;
  inner.duration_ns = 4'000'000;  // 4 ms inside solve
  inner.tid = 0;
  inner.num_args = 1;
  inner.arg_keys[0] = "flops";
  inner.arg_values[0] = 4.0e6;
  events.push_back(inner);

  // Same names on another thread must not be attributed as children.
  TraceEvent other;
  other.name = "factor";
  other.start_ns = 1'000'000;
  other.duration_ns = 1'000'000;
  other.tid = 1;
  other.num_args = 1;
  other.arg_keys[0] = "flops";
  other.arg_values[0] = 1.0e6;
  events.push_back(other);

  const std::vector<PhaseStat> stats = AggregateTrace(events);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "solve");  // sorted by wall time descending
  EXPECT_EQ(stats[0].count, 1);
  EXPECT_DOUBLE_EQ(stats[0].wall_ms, 10.0);
  EXPECT_DOUBLE_EQ(stats[0].self_ms, 6.0);  // 10 - 4 nested
  EXPECT_DOUBLE_EQ(stats[0].flops, 0.0);
  EXPECT_EQ(stats[1].name, "factor");
  EXPECT_EQ(stats[1].count, 2);
  EXPECT_DOUBLE_EQ(stats[1].wall_ms, 5.0);
  EXPECT_DOUBLE_EQ(stats[1].self_ms, 5.0);
  EXPECT_DOUBLE_EQ(stats[1].flops, 5.0e6);
}

TEST_F(ObsTest, FlopCounterLivesInRegistry) {
  Counter* flops = MetricsRegistry::Global().counter("flops.total");
  const double before = flops->value();
  AddFlops(123.0);
  EXPECT_EQ(flops->value(), before + 123.0);
  EXPECT_EQ(FlopCount(), flops->value());
}

TEST_F(ObsTest, LsqrStopNamesAreStable) {
  EXPECT_STREQ(LsqrStopName(LsqrStop::kIterationLimit), "iteration_limit");
  EXPECT_STREQ(LsqrStopName(LsqrStop::kRhsZero), "rhs_zero");
  EXPECT_STREQ(LsqrStopName(LsqrStop::kNormalZero), "normal_zero");
  EXPECT_STREQ(LsqrStopName(LsqrStop::kResidualTol), "residual_tol");
  EXPECT_STREQ(LsqrStopName(LsqrStop::kNormalResidualTol),
               "normal_residual_tol");
  EXPECT_STREQ(LsqrStopName(LsqrStop::kBreakdown), "breakdown");
}

// ---- Windowed instruments (the live-scrape read path). ----

TEST_F(ObsTest, WindowedCounterSlidesAndAges) {
  WindowedCounter counter;
  // Observations at explicit epoch seconds (the test seam): three seconds
  // of traffic, then a query clock that moves past them.
  counter.AddAt(100, 10.0);
  counter.AddAt(101, 20.0);
  counter.AddAt(102, 30.0);
  EXPECT_DOUBLE_EQ(counter.SumOverAt(3, 102), 60.0);
  EXPECT_DOUBLE_EQ(counter.SumOverAt(1, 102), 30.0);   // current second only
  EXPECT_DOUBLE_EQ(counter.SumOverAt(2, 102), 50.0);
  EXPECT_DOUBLE_EQ(counter.RateOverAt(2, 102), 25.0);  // 50 / 2
  // The window slides: at t=104 the first second has aged out of a
  // 3-second window, and at t=200 everything has.
  EXPECT_DOUBLE_EQ(counter.SumOverAt(3, 104), 30.0);
  EXPECT_DOUBLE_EQ(counter.SumOverAt(3, 200), 0.0);
  // Slot reuse: second 228 recycles the ring slot second 100 used
  // (128-slot ring), and the old value must not bleed through.
  counter.AddAt(228, 7.0);
  EXPECT_DOUBLE_EQ(counter.SumOverAt(1, 228), 7.0);
  counter.Reset();
  EXPECT_DOUBLE_EQ(counter.SumOverAt(WindowedCounter::kMaxWindowSeconds, 228),
                   0.0);
}

TEST_F(ObsTest, WindowedCounterConcurrentAdds) {
  WindowedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAdds; ++i) counter.AddAt(500 + (i % 3), 1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(counter.SumOverAt(3, 502),
                   static_cast<double>(kThreads * kAdds));
}

TEST_F(ObsTest, WindowedHistogramQuantilesAndEmptyWindow) {
  WindowedHistogram histogram;
  // Empty window: NaN quantiles, zero count (same contract as the
  // cumulative histogram).
  EXPECT_EQ(histogram.CountOverAt(10, 100), 0);
  EXPECT_TRUE(std::isnan(histogram.QuantileOverAt(10, 0.5, 100)));

  for (int i = 1; i <= 100; ++i) {
    histogram.ObserveAt(100 + (i % 5), static_cast<double>(i));
  }
  EXPECT_EQ(histogram.CountOverAt(10, 104), 100);
  EXPECT_DOUBLE_EQ(histogram.SumOverAt(10, 104), 5050.0);
  const double p50 = histogram.QuantileOverAt(10, 0.5, 104);
  EXPECT_GE(p50, 32.0);  // median 50.5 lives in bucket [32, 64)
  EXPECT_LT(p50, 64.0);
  const double p99 = histogram.QuantileOverAt(10, 0.99, 104);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 128.0);  // clamped to merged bucket bounds, not min/max
  // A narrow window sees only its seconds' observations.
  EXPECT_LT(histogram.CountOverAt(1, 104), 100);
  // Everything ages out.
  EXPECT_EQ(histogram.CountOverAt(10, 300), 0);
  EXPECT_TRUE(std::isnan(histogram.QuantileOverAt(10, 0.5, 300)));
}

TEST_F(ObsTest, RegistryWindowedSnapshot) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  WindowedCounter* counter = registry.windowed_counter("test.win_requests");
  WindowedHistogram* histogram =
      registry.windowed_histogram("test.win_latency");
  counter->Reset();
  histogram->Reset();
  // Same name as a different kind in the cumulative namespace must be
  // legal (serving feeds both from one site).
  registry.counter("test.win_requests")->Add(5.0);
  counter->AddAt(1000, 40.0);
  histogram->ObserveAt(1000, 3.0);
  histogram->ObserveAt(1000, 5.0);

  const std::vector<WindowedMetricSnapshot> rows =
      registry.WindowedSnapshotAt(10, 1000);
  const WindowedMetricSnapshot* counter_row = nullptr;
  const WindowedMetricSnapshot* histogram_row = nullptr;
  for (const WindowedMetricSnapshot& row : rows) {
    if (row.name == "test.win_requests") counter_row = &row;
    if (row.name == "test.win_latency") histogram_row = &row;
  }
  ASSERT_NE(counter_row, nullptr);
  EXPECT_EQ(counter_row->kind, WindowedMetricSnapshot::Kind::kCounter);
  EXPECT_DOUBLE_EQ(counter_row->sum, 40.0);
  EXPECT_DOUBLE_EQ(counter_row->rate, 4.0);
  ASSERT_NE(histogram_row, nullptr);
  EXPECT_EQ(histogram_row->count, 2);
  EXPECT_DOUBLE_EQ(histogram_row->sum, 8.0);
  EXPECT_FALSE(std::isnan(histogram_row->p50));
  counter->Reset();
  histogram->Reset();
}

// ---- Format validators (srda_trace_check --format=prom|events). ----

TEST_F(ObsTest, ValidatePrometheusTextAcceptsWellFormed) {
  const std::string text =
      "# HELP srda_requests Total requests.\n"
      "# TYPE srda_requests counter\n"
      "srda_requests 42\n"
      "# TYPE srda_latency_us summary\n"
      "srda_latency_us{quantile=\"0.5\"} 12.5\n"
      "srda_latency_us_sum 1250\n"
      "srda_latency_us_count 100\n"
      "srda_rate_window{window=\"10\"} 3.2\n"
      "srda_weird_value NaN\n"
      "srda_inf_value +Inf\n";
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(text, {}, &error)) << error;
  EXPECT_TRUE(ValidatePrometheusText(
      text, {"srda_requests", "srda_latency_us_count"}, &error))
      << error;
}

TEST_F(ObsTest, ValidatePrometheusTextRejectsMalformed) {
  std::string error;
  // Zero samples.
  EXPECT_FALSE(ValidatePrometheusText("# HELP a b\n", {}, &error));
  // Bad metric name (leading digit).
  EXPECT_FALSE(ValidatePrometheusText("9bad 1\n", {}, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  // Unparseable value.
  EXPECT_FALSE(ValidatePrometheusText("srda_x pancake\n", {}, &error));
  // Unterminated label block.
  EXPECT_FALSE(
      ValidatePrometheusText("srda_x{window=\"10\" 1\n", {}, &error));
  // Unknown TYPE keyword.
  EXPECT_FALSE(
      ValidatePrometheusText("# TYPE srda_x pie\nsrda_x 1\n", {}, &error));
  // Required name absent (suffix does not count as a match).
  EXPECT_FALSE(ValidatePrometheusText("srda_x_count 1\n", {"srda_x"}, &error));
  EXPECT_NE(error.find("srda_x"), std::string::npos) << error;
}

TEST_F(ObsTest, ValidateJsonlEventsAcceptsAndRejects) {
  std::string error;
  const std::string good =
      "{\"ts_us\":10,\"seq\":0,\"event\":\"model.load\","
      "\"args\":{\"path\":\"m.bin\"}}\n"
      "{\"ts_us\":20,\"seq\":1,\"event\":\"serve.start\"}\n";
  EXPECT_TRUE(ValidateJsonlEvents(good, {}, &error)) << error;
  EXPECT_TRUE(ValidateJsonlEvents(good, {"model.load", "serve.start"}, &error))
      << error;
  // Missing required event.
  EXPECT_FALSE(ValidateJsonlEvents(good, {"train.start"}, &error));
  // Empty stream.
  EXPECT_FALSE(ValidateJsonlEvents("", {}, &error));
  EXPECT_NE(error.find("no events"), std::string::npos) << error;
  // Non-monotone sequence numbers.
  EXPECT_FALSE(ValidateJsonlEvents(
      "{\"ts_us\":1,\"seq\":5,\"event\":\"a\"}\n"
      "{\"ts_us\":2,\"seq\":5,\"event\":\"b\"}\n",
      {}, &error));
  // Missing "event" field.
  EXPECT_FALSE(
      ValidateJsonlEvents("{\"ts_us\":1,\"seq\":0}\n", {}, &error));
  // args must be an object when present.
  EXPECT_FALSE(ValidateJsonlEvents(
      "{\"ts_us\":1,\"seq\":0,\"event\":\"a\",\"args\":3}\n", {}, &error));
  // Malformed JSON line.
  EXPECT_FALSE(ValidateJsonlEvents("{not json}\n", {}, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

// ---- Event log. ----

TEST_F(ObsTest, EventLogWritesValidJsonl) {
  const std::string path = ::testing::TempDir() + "/obs_test_events.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(obs::EventLog::Global().Open(path));
  EXPECT_TRUE(obs::EventLogEnabled());
  {
    obs::Event("model.load")
        .Str("path", "weights \"v2\"\n")  // needs escaping
        .Num("rows", 1024);
  }
  { obs::Event("serve.start").Num("alpha", 0.5); }
  {
    obs::Event("edge.cases")
        .Num("nan", std::nan(""))  // non-finite -> null
        .Num("big", 1e30);
  }
  obs::EventLog::Global().Close();
  EXPECT_FALSE(obs::EventLogEnabled());

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  EXPECT_TRUE(ValidateJsonlEvents(
      buffer.str(), {"model.load", "serve.start", "edge.cases"}, &error))
      << error << "\n" << buffer.str();
  EXPECT_NE(buffer.str().find("\\\"v2\\\"\\n"), std::string::npos);
  EXPECT_NE(buffer.str().find("\"nan\":null"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, EventLogDisabledIsNoop) {
  ASSERT_FALSE(obs::EventLogEnabled());
  const int64_t before = obs::EventLog::Global().events_written();
  { obs::Event("never.written").Num("x", 1.0); }
  EXPECT_EQ(obs::EventLog::Global().events_written(), before);
}

TEST_F(ObsTest, EventLogOpenFailureStaysDisabled) {
  EXPECT_FALSE(obs::EventLog::Global().Open("/nonexistent_dir/e.jsonl"));
  EXPECT_FALSE(obs::EventLogEnabled());
}

// ---- Exporter serializers: must satisfy our own validators. ----

TEST_F(ObsTest, PrometheusNameSanitizes) {
  EXPECT_EQ(obs::PrometheusName("serve.latency_us"), "srda_serve_latency_us");
  EXPECT_EQ(obs::PrometheusName("a-b c"), "srda_a_b_c");
}

TEST_F(ObsTest, PrometheusTextValidatesAndOmitsEmptyQuantiles) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.counter("export.requests")->Add(17.0);
  Histogram* empty = registry.histogram("export.empty_hist");
  empty->Reset();
  Histogram* filled = registry.histogram("export.filled_hist");
  filled->Reset();
  filled->Observe(5.0);
  filled->Observe(9.0);
  registry.windowed_counter("export.win")->AddAt(50, 8.0);

  const std::string text = obs::PrometheusTextAt(registry, 10, 50);
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(
      text,
      {"srda_up", "srda_export_requests", "srda_export_filled_hist_count",
       "srda_export_win_window_sum", "srda_export_win_window_rate"},
      &error))
      << error << "\n" << text;
  // The empty histogram must not advertise quantiles...
  EXPECT_EQ(text.find("srda_export_empty_hist{quantile"), std::string::npos);
  // ...but the filled one must.
  EXPECT_NE(text.find("srda_export_filled_hist{quantile=\"0.5\"}"),
            std::string::npos);
  // Windowed rows carry the window label.
  EXPECT_NE(text.find("srda_export_win_window_sum{window=\"10\"} 8"),
            std::string::npos);
}

TEST_F(ObsTest, MetricsJsonParsesAndCarriesWindowedRows) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.windowed_histogram("export.win_lat")->ObserveAt(70, 4.0);

  const std::string text = obs::MetricsJsonAt(registry, 10, 70);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(text, &root, &error)) << error << "\n" << text;
  const JsonValue* window_s = root.Find("window_s");
  ASSERT_NE(window_s, nullptr);
  EXPECT_DOUBLE_EQ(window_s->number, 10.0);
  const JsonValue* cumulative = root.Find("cumulative");
  ASSERT_NE(cumulative, nullptr);
  EXPECT_EQ(cumulative->type, JsonValue::Type::kArray);
  const JsonValue* windowed = root.Find("windowed");
  ASSERT_NE(windowed, nullptr);
  bool found = false;
  for (const JsonValue& row : windowed->array) {
    const JsonValue* name = row.Find("name");
    if (name != nullptr && name->string == "export.win_lat") {
      found = true;
      const JsonValue* count = row.Find("count");
      ASSERT_NE(count, nullptr);
      EXPECT_DOUBLE_EQ(count->number, 1.0);
    }
  }
  EXPECT_TRUE(found) << text;
}

TEST_F(ObsTest, ExporterWritesSnapshotsAtomically) {
  MetricsRegistry::Global().counter("export.alive")->Add(1.0);
  obs::ExporterOptions options;
  options.path = ::testing::TempDir() + "/obs_test_metrics.prom";
  options.interval_s = 0.02;
  obs::Exporter exporter(options);
  ASSERT_TRUE(exporter.Start());
  EXPECT_TRUE(exporter.running());
  // First snapshot is synchronous, so the file exists right now.
  {
    std::ifstream in(options.path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    EXPECT_TRUE(ValidatePrometheusText(buffer.str(),
                                       {"srda_up", "srda_export_alive"},
                                       &error))
        << error;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  EXPECT_GE(exporter.snapshots_written(), 2);  // first + final at least
  // No torn temp file left behind.
  std::ifstream tmp(options.path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(options.path.c_str());
}

TEST_F(ObsTest, ExporterJsonFormat) {
  obs::ExporterOptions options;
  options.path = ::testing::TempDir() + "/obs_test_metrics.json";
  options.format = obs::ExporterOptions::Format::kJson;
  obs::Exporter exporter(options);
  ASSERT_TRUE(exporter.WriteSnapshot());
  std::ifstream in(options.path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue root;
  std::string error;
  EXPECT_TRUE(ParseJson(buffer.str(), &root, &error)) << error;
  std::remove(options.path.c_str());
}

TEST_F(ObsTest, ExporterUnwritablePathFailsStart) {
  obs::ExporterOptions options;
  options.path = "/nonexistent_dir/metrics.prom";
  obs::Exporter exporter(options);
  EXPECT_FALSE(exporter.Start());
  EXPECT_FALSE(exporter.running());
}

// ---- HTTP server (the /metrics transport). ----

TEST_F(ObsTest, HttpServerServesAndRoutes) {
  obs::HttpServer server;
  server.Handle("/ping", [](const std::string&) {
    obs::HttpResponse response;
    response.content_type = "text/plain";
    response.body = "pong";
    return response;
  });
  server.Handle("/echo", [](const std::string& path) {
    obs::HttpResponse response;
    response.body = path;
    return response;
  });
  ASSERT_TRUE(server.Start(0));  // ephemeral port
  ASSERT_GT(server.port(), 0);

  int status = 0;
  std::string body;
  ASSERT_TRUE(obs::ParseHttpResponse(obs::HttpGet(server.port(), "/ping"),
                                     &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "pong");
  // Query strings are stripped before routing.
  ASSERT_TRUE(obs::ParseHttpResponse(
      obs::HttpGet(server.port(), "/echo?verbose=1"), &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "/echo");
  // Unknown path -> 404.
  ASSERT_TRUE(obs::ParseHttpResponse(obs::HttpGet(server.port(), "/missing"),
                                     &status, &body));
  EXPECT_EQ(status, 404);
  EXPECT_EQ(server.requests_served(), 3);
  server.Stop();
  EXPECT_FALSE(server.running());
  // After Stop, connections fail cleanly (empty raw response).
  EXPECT_TRUE(obs::HttpGet(server.port(), "/ping", 0.5).empty());
}

TEST_F(ObsTest, ParseHttpResponseHandlesStatusAndBody) {
  int status = 0;
  std::string body;
  EXPECT_TRUE(obs::ParseHttpResponse(
      "HTTP/1.0 503 Service Unavailable\r\nContent-Length: 3\r\n\r\nnot",
      &status, &body));
  EXPECT_EQ(status, 503);
  EXPECT_EQ(body, "not");
  EXPECT_FALSE(obs::ParseHttpResponse("garbage", &status, &body));
}

}  // namespace
}  // namespace srda
