// Tests for the observability layer (src/obs): trace recording, per-thread
// buffer merging, metric atomicity, the JSON emitter/validator pair, and
// the phase-summary aggregation.
//
// The trace recorder and metrics registry are process-wide singletons, so
// every test starts from a clean slate via the fixture and restores the
// disabled state on exit (other test binaries assume tracing is off).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flops.h"
#include "common/parallel.h"
#include "gtest/gtest.h"
#include "linalg/lsqr.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace srda {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
  }

  void TearDown() override {
    TraceRecorder::Global().SetEnabled(false);
    TraceRecorder::Global().Clear();
    SetGlobalThreadCount(0);
  }
};

int64_t CountByName(const std::vector<TraceEvent>& events,
                    const std::string& name) {
  int64_t count = 0;
  for (const TraceEvent& event : events) {
    if (name == event.name) ++count;
  }
  return count;
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  const int64_t before = TraceRecorder::Global().EventCount();
  for (int i = 0; i < 100; ++i) {
    TraceSpan span("noop");
    EXPECT_FALSE(span.recording());
    span.AddArg("flops", 1.0);  // must be dropped, not crash
  }
  EXPECT_EQ(TraceRecorder::Global().EventCount(), before);
}

TEST_F(ObsTest, RecordsCompleteSpansWithArgs) {
  TraceRecorder::Global().SetEnabled(true);
  {
    TraceSpan span("outer");
    ASSERT_TRUE(span.recording());
    span.AddArg("flops", 128.0);
    span.AddArg("n", 64.0);
    span.AddArg("dropped", 1.0);  // third arg is capped away
    TraceSpan inner("inner");
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().Collect();
  ASSERT_EQ(events.size(), 2u);

  // Buffers record in completion order: inner closes first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[1].num_args, 2);
  EXPECT_STREQ(events[1].arg_keys[0], "flops");
  EXPECT_EQ(events[1].arg_values[0], 128.0);
  EXPECT_GE(events[1].duration_ns, events[0].duration_ns);
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
}

TEST_F(ObsTest, NestingDepthRestoredAcrossSiblings) {
  TraceRecorder::Global().SetEnabled(true);
  {
    TraceSpan a("a");
    { TraceSpan child("a.child"); }
    { TraceSpan sibling("a.sibling"); }
  }
  const std::vector<TraceEvent> events = TraceRecorder::Global().Collect();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].depth, 1);  // a.child
  EXPECT_EQ(events[1].depth, 1);  // a.sibling, not 2
  EXPECT_EQ(events[2].depth, 0);  // a
}

TEST_F(ObsTest, MergesSpansAcrossPoolThreads) {
  SetGlobalThreadCount(4);
  TraceRecorder::Global().SetEnabled(true);
  TraceRecorder::Global().Clear();

  constexpr int kItems = 64;
  std::atomic<int> visited{0};
  ParallelFor(0, kItems, [&visited](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      TraceSpan span("work.item");
      visited.fetch_add(1, std::memory_order_relaxed);
    }
  });

  EXPECT_EQ(visited.load(), kItems);
  const std::vector<TraceEvent> events = TraceRecorder::Global().Collect();
  EXPECT_EQ(CountByName(events, "work.item"), kItems);
  // The pool instrumented its own dispatch too.
  EXPECT_EQ(CountByName(events, "pool.parallel_for"), 1);
  EXPECT_GT(CountByName(events, "pool.chunk"), 0);
}

TEST_F(ObsTest, ThreadsGetDistinctTids) {
  TraceRecorder::Global().SetEnabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] { TraceSpan span("tid.span"); });
  }
  for (std::thread& thread : threads) thread.join();

  std::vector<int> tids;
  for (const TraceEvent& event : TraceRecorder::Global().Collect()) {
    if (std::string(event.name) == "tid.span") tids.push_back(event.tid);
  }
  ASSERT_EQ(tids.size(), static_cast<size_t>(kThreads));
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

TEST_F(ObsTest, EventsSurviveThreadExit) {
  TraceRecorder::Global().SetEnabled(true);
  std::thread worker([] { TraceSpan span("short.lived"); });
  worker.join();
  // The thread retired its buffer on exit; the event must still be merged.
  const std::vector<TraceEvent> events = TraceRecorder::Global().Collect();
  EXPECT_EQ(CountByName(events, "short.lived"), 1);
}

TEST_F(ObsTest, CounterMatchesSingleThreadedSum) {
  Counter* counter = MetricsRegistry::Global().counter("test.atomicity");
  counter->Reset();

  constexpr int kItems = 4096;
  for (int i = 0; i < kItems; ++i) counter->Add(1.0);
  const double serial = counter->value();
  counter->Reset();

  SetGlobalThreadCount(4);
  ParallelFor(0, kItems, [counter](int begin, int end) {
    for (int i = begin; i < end; ++i) counter->Add(1.0);
  });
  EXPECT_EQ(counter->value(), serial);
  EXPECT_EQ(counter->value(), static_cast<double>(kItems));
  counter->Reset();
}

TEST_F(ObsTest, HistogramTracksCountSumMinMax) {
  Histogram* histogram = MetricsRegistry::Global().histogram("test.histogram");
  histogram->Reset();
  EXPECT_EQ(histogram->count(), 0);
  EXPECT_EQ(histogram->min(), 0.0);
  EXPECT_EQ(histogram->max(), 0.0);

  histogram->Observe(2.0);
  histogram->Observe(8.0);
  histogram->Observe(0.5);
  EXPECT_EQ(histogram->count(), 3);
  EXPECT_EQ(histogram->sum(), 10.5);
  EXPECT_EQ(histogram->min(), 0.5);
  EXPECT_EQ(histogram->max(), 8.0);
  EXPECT_DOUBLE_EQ(histogram->mean(), 3.5);
  histogram->Reset();
  EXPECT_EQ(histogram->count(), 0);
}

TEST_F(ObsTest, HistogramApproxQuantile) {
  Histogram* histogram = MetricsRegistry::Global().histogram("test.quantile");
  histogram->Reset();
  EXPECT_EQ(histogram->ApproxQuantile(0.5), 0.0);  // empty

  // 100 observations spread over [1, 100]: quantiles land in the right
  // power-of-two bucket and are clamped to the observed range.
  for (int i = 1; i <= 100; ++i) {
    histogram->Observe(static_cast<double>(i));
  }
  EXPECT_GE(histogram->ApproxQuantile(0.0), 1.0);
  EXPECT_LE(histogram->ApproxQuantile(1.0), 100.0);
  const double p50 = histogram->ApproxQuantile(0.5);
  EXPECT_GE(p50, 32.0);   // true median 50.5 lives in bucket [32, 64)
  EXPECT_LT(p50, 64.0);
  const double p99 = histogram->ApproxQuantile(0.99);
  EXPECT_GE(p99, 64.0);   // rank-99 observation lives in bucket [64, 128)
  EXPECT_LE(p99, 100.0);  // but never beyond the observed max
  EXPECT_LE(histogram->ApproxQuantile(0.1), p50);
  histogram->Reset();

  // A single observation reports itself at every quantile.
  histogram->Observe(7.0);
  EXPECT_EQ(histogram->ApproxQuantile(0.0), 7.0);
  EXPECT_EQ(histogram->ApproxQuantile(0.5), 7.0);
  EXPECT_EQ(histogram->ApproxQuantile(1.0), 7.0);
  histogram->Reset();
}

TEST_F(ObsTest, RegistryResetKeepsPointersValid) {
  Counter* counter = MetricsRegistry::Global().counter("test.reset");
  counter->Add(7.0);
  MetricsRegistry::Global().ResetAll();
  EXPECT_EQ(counter->value(), 0.0);
  EXPECT_EQ(MetricsRegistry::Global().counter("test.reset"), counter);
  counter->Add(1.0);
  EXPECT_EQ(counter->value(), 1.0);
  counter->Reset();
}

TEST_F(ObsTest, WrittenJsonValidates) {
  TraceRecorder::Global().SetEnabled(true);
  {
    TraceSpan span("json.span");
    span.AddArg("flops", 42.0);
  }
  { TraceSpan span("json \"quoted\\name"); }  // must be escaped, not break

  std::ostringstream out;
  TraceRecorder::Global().WriteJson(out);
  std::string error;
  EXPECT_TRUE(ValidateTraceJson(out.str(), {"json.span"}, &error)) << error;
  EXPECT_FALSE(ValidateTraceJson(out.str(), {"absent.span"}, &error));

  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(TraceRecorder::Global().WriteJsonFile(path));
  std::ifstream input(path);
  std::ostringstream contents;
  contents << input.rdbuf();
  EXPECT_EQ(contents.str(), out.str());
  std::remove(path.c_str());
}

TEST_F(ObsTest, JsonParserRejectsMalformedDocuments) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson("", &value, &error));
  EXPECT_FALSE(ParseJson("{", &value, &error));
  EXPECT_FALSE(ParseJson("{\"a\":1,}", &value, &error));
  EXPECT_FALSE(ParseJson("{\"a\":1} extra", &value, &error));
  EXPECT_FALSE(ParseJson("{\"a\":1,\"a\":2}", &value, &error));  // dup key
  EXPECT_FALSE(ParseJson("[1,2", &value, &error));
  EXPECT_FALSE(ParseJson("nul", &value, &error));

  ASSERT_TRUE(ParseJson("{\"a\":[1,true,\"x\"],\"b\":-2.5e3}", &value, &error))
      << error;
  ASSERT_NE(value.Find("a"), nullptr);
  EXPECT_EQ(value.Find("a")->array.size(), 3u);
  EXPECT_EQ(value.Find("b")->number, -2500.0);

  EXPECT_FALSE(ValidateTraceJson("[]", {}, &error));  // root must be object
  EXPECT_FALSE(ValidateTraceJson("{\"traceEvents\":[]}", {}, &error));
  EXPECT_FALSE(ValidateTraceJson(
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\"}]}", {}, &error));
}

TEST_F(ObsTest, AggregateTraceComputesSelfTime) {
  std::vector<TraceEvent> events;
  TraceEvent outer;
  outer.name = "solve";
  outer.start_ns = 0;
  outer.duration_ns = 10'000'000;  // 10 ms
  outer.tid = 0;
  events.push_back(outer);

  TraceEvent inner;
  inner.name = "factor";
  inner.start_ns = 2'000'000;
  inner.duration_ns = 4'000'000;  // 4 ms inside solve
  inner.tid = 0;
  inner.num_args = 1;
  inner.arg_keys[0] = "flops";
  inner.arg_values[0] = 4.0e6;
  events.push_back(inner);

  // Same names on another thread must not be attributed as children.
  TraceEvent other;
  other.name = "factor";
  other.start_ns = 1'000'000;
  other.duration_ns = 1'000'000;
  other.tid = 1;
  other.num_args = 1;
  other.arg_keys[0] = "flops";
  other.arg_values[0] = 1.0e6;
  events.push_back(other);

  const std::vector<PhaseStat> stats = AggregateTrace(events);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "solve");  // sorted by wall time descending
  EXPECT_EQ(stats[0].count, 1);
  EXPECT_DOUBLE_EQ(stats[0].wall_ms, 10.0);
  EXPECT_DOUBLE_EQ(stats[0].self_ms, 6.0);  // 10 - 4 nested
  EXPECT_DOUBLE_EQ(stats[0].flops, 0.0);
  EXPECT_EQ(stats[1].name, "factor");
  EXPECT_EQ(stats[1].count, 2);
  EXPECT_DOUBLE_EQ(stats[1].wall_ms, 5.0);
  EXPECT_DOUBLE_EQ(stats[1].self_ms, 5.0);
  EXPECT_DOUBLE_EQ(stats[1].flops, 5.0e6);
}

TEST_F(ObsTest, FlopCounterLivesInRegistry) {
  Counter* flops = MetricsRegistry::Global().counter("flops.total");
  const double before = flops->value();
  AddFlops(123.0);
  EXPECT_EQ(flops->value(), before + 123.0);
  EXPECT_EQ(FlopCount(), flops->value());
}

TEST_F(ObsTest, LsqrStopNamesAreStable) {
  EXPECT_STREQ(LsqrStopName(LsqrStop::kIterationLimit), "iteration_limit");
  EXPECT_STREQ(LsqrStopName(LsqrStop::kRhsZero), "rhs_zero");
  EXPECT_STREQ(LsqrStopName(LsqrStop::kNormalZero), "normal_zero");
  EXPECT_STREQ(LsqrStopName(LsqrStop::kResidualTol), "residual_tol");
  EXPECT_STREQ(LsqrStopName(LsqrStop::kNormalResidualTol),
               "normal_residual_tol");
  EXPECT_STREQ(LsqrStopName(LsqrStop::kBreakdown), "breakdown");
}

}  // namespace
}  // namespace srda
