// Tests for stratified k-fold cross-validation and alpha selection.

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "select/model_selection.h"

namespace srda {
namespace {

std::vector<int> BalancedLabels(int num_classes, int per_class) {
  std::vector<int> labels;
  for (int k = 0; k < num_classes; ++k) {
    for (int i = 0; i < per_class; ++i) labels.push_back(k);
  }
  return labels;
}

TEST(StratifiedFoldsTest, PartitionCoversAllSamples) {
  const std::vector<int> labels = BalancedLabels(3, 12);
  Rng rng(1);
  const auto folds = StratifiedFolds(labels, 3, 4, &rng);
  ASSERT_EQ(folds.size(), 4u);
  std::set<int> seen;
  for (const auto& fold : folds) {
    for (int index : fold) {
      EXPECT_TRUE(seen.insert(index).second) << "duplicate index " << index;
    }
  }
  EXPECT_EQ(seen.size(), labels.size());
}

TEST(StratifiedFoldsTest, FoldsAreClassBalanced) {
  const std::vector<int> labels = BalancedLabels(2, 20);
  Rng rng(2);
  const auto folds = StratifiedFolds(labels, 2, 5, &rng);
  for (const auto& fold : folds) {
    int class0 = 0;
    for (int index : fold) {
      if (labels[static_cast<size_t>(index)] == 0) ++class0;
    }
    EXPECT_EQ(class0, 4);  // 20 / 5 per class per fold.
    EXPECT_EQ(fold.size(), 8u);
  }
}

TEST(StratifiedFoldsDeathTest, TooManyFoldsAborts) {
  const std::vector<int> labels = BalancedLabels(2, 3);
  Rng rng(3);
  EXPECT_DEATH(StratifiedFolds(labels, 2, 4, &rng), "fewer samples");
}

TEST(CrossValidateTest, CallsEvaluateOncePerFold) {
  DenseDataset dataset;
  dataset.num_classes = 2;
  dataset.features = Matrix(12, 2);
  dataset.labels = BalancedLabels(2, 6);
  Rng rng(4);
  int calls = 0;
  const double mean = CrossValidate(
      dataset, 3, &rng,
      [&](const DenseDataset& train, const DenseDataset& validation) {
        ++calls;
        EXPECT_EQ(train.features.rows() + validation.features.rows(), 12);
        EXPECT_EQ(validation.features.rows(), 4);
        return static_cast<double>(calls);
      });
  EXPECT_EQ(calls, 3);
  EXPECT_DOUBLE_EQ(mean, 2.0);  // (1 + 2 + 3) / 3.
}

TEST(SelectSrdaAlphaTest, PicksReasonableAlphaOnBlobs) {
  Rng rng(5);
  DenseDataset dataset;
  dataset.num_classes = 3;
  const int per_class = 20;
  dataset.features = Matrix(3 * per_class, 8);
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      dataset.labels.push_back(k);
      for (int j = 0; j < 8; ++j) {
        dataset.features(row, j) = 2.5 * (j == k) + rng.NextGaussian();
      }
    }
  }
  const std::vector<double> alphas = {1e-4, 0.01, 1.0, 100.0, 1e4};
  const AlphaSearchResult result =
      SelectSrdaAlpha(dataset, alphas, 4, /*seed=*/42);
  ASSERT_EQ(result.errors.size(), alphas.size());
  for (double error : result.errors) {
    EXPECT_GE(error, 0.0);
    EXPECT_LE(error, 1.0);
  }
  EXPECT_EQ(result.best_alpha,
            alphas[static_cast<size_t>(result.best_index)]);
  // Extreme over-regularization should not win on separable data.
  EXPECT_LT(result.errors[static_cast<size_t>(result.best_index)],
            result.errors.back() + 1e-12);
}

TEST(SelectSrdaAlphaTest, DeterministicInSeed) {
  Rng rng(6);
  DenseDataset dataset;
  dataset.num_classes = 2;
  const int per_class = 12;
  dataset.features = Matrix(2 * per_class, 4);
  for (int k = 0; k < 2; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      dataset.labels.push_back(k);
      for (int j = 0; j < 4; ++j) {
        dataset.features(row, j) = 1.5 * k + rng.NextGaussian();
      }
    }
  }
  const std::vector<double> alphas = {0.1, 1.0};
  const AlphaSearchResult a = SelectSrdaAlpha(dataset, alphas, 3, 7);
  const AlphaSearchResult b = SelectSrdaAlpha(dataset, alphas, 3, 7);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.best_index, b.best_index);
}

TEST(SelectSrdaAlphaDeathTest, EmptyGridAborts) {
  DenseDataset dataset;
  dataset.num_classes = 2;
  dataset.features = Matrix(4, 2);
  dataset.labels = {0, 0, 1, 1};
  EXPECT_DEATH(SelectSrdaAlpha(dataset, {}, 2, 1), "no alpha");
}

}  // namespace
}  // namespace srda
