// Tests for the LSQR solver and the linear-operator wrappers.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/linear_operator.h"
#include "linalg/lsqr.h"
#include "matrix/blas.h"
#include "sparse/sparse_matrix.h"

namespace srda {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

TEST(DenseOperatorTest, MatchesMatrixProducts) {
  Rng rng(1);
  const Matrix a = RandomMatrix(6, 4, &rng);
  const DenseOperator op(&a);
  EXPECT_EQ(op.rows(), 6);
  EXPECT_EQ(op.cols(), 4);
  Vector x(4);
  for (int i = 0; i < 4; ++i) x[i] = rng.NextGaussian();
  EXPECT_LT(MaxAbsDiff(op.Apply(x), Multiply(a, x)), 1e-14);
  Vector y(6);
  for (int i = 0; i < 6; ++i) y[i] = rng.NextGaussian();
  EXPECT_LT(MaxAbsDiff(op.ApplyTransposed(y), MultiplyTransposed(a, y)),
            1e-14);
}

TEST(SparseOperatorTest, MatchesSparseProducts) {
  SparseMatrixBuilder builder(3, 2);
  builder.Add(0, 0, 2.0);
  builder.Add(2, 1, -1.0);
  const SparseMatrix sparse = std::move(builder).Build();
  const SparseOperator op(&sparse);
  const Vector y = op.Apply(Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(AppendOnesColumnOperatorTest, AppendsBiasColumn) {
  Rng rng(2);
  const Matrix a = RandomMatrix(5, 3, &rng);
  const DenseOperator base(&a);
  const AppendOnesColumnOperator op(&base);
  EXPECT_EQ(op.cols(), 4);
  Vector x{1.0, 2.0, 3.0, 10.0};
  const Vector y = op.Apply(x);
  // Equivalent to A * x[0:3] + 10.
  const Vector expected = Multiply(a, Vector{1.0, 2.0, 3.0});
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(y[i], expected[i] + 10.0, 1e-13);
}

TEST(AppendOnesColumnOperatorTest, TransposeSumsLastRow) {
  Rng rng(3);
  const Matrix a = RandomMatrix(4, 2, &rng);
  const DenseOperator base(&a);
  const AppendOnesColumnOperator op(&base);
  Vector y{1.0, 2.0, 3.0, 4.0};
  const Vector x = op.ApplyTransposed(y);
  EXPECT_EQ(x.size(), 3);
  EXPECT_NEAR(x[2], 10.0, 1e-13);  // Sum of y.
}

TEST(AppendOnesColumnOperatorTest, AdjointIdentity) {
  Rng rng(4);
  const Matrix a = RandomMatrix(7, 5, &rng);
  const DenseOperator base(&a);
  const AppendOnesColumnOperator op(&base);
  Vector x(6);
  Vector y(7);
  for (int i = 0; i < 6; ++i) x[i] = rng.NextGaussian();
  for (int i = 0; i < 7; ++i) y[i] = rng.NextGaussian();
  EXPECT_NEAR(Dot(op.Apply(x), y), Dot(x, op.ApplyTransposed(y)), 1e-10);
}

TEST(LsqrTest, SolvesConsistentSquareSystem) {
  Rng rng(5);
  const Matrix a = RandomMatrix(6, 6, &rng);
  Vector x_true(6);
  for (int i = 0; i < 6; ++i) x_true[i] = rng.NextGaussian();
  const Vector b = Multiply(a, x_true);
  const DenseOperator op(&a);
  LsqrOptions options;
  options.max_iterations = 200;
  options.atol = 1e-12;
  options.btol = 1e-12;
  const LsqrResult result = Lsqr(op, b, options);
  EXPECT_LT(MaxAbsDiff(result.x, x_true), 1e-6);
}

TEST(LsqrTest, ZeroRhsGivesZeroSolution) {
  Rng rng(6);
  const Matrix a = RandomMatrix(4, 3, &rng);
  const DenseOperator op(&a);
  const LsqrResult result = Lsqr(op, Vector(4));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_EQ(Norm2(result.x), 0.0);
}

TEST(LsqrTest, OverdeterminedMatchesNormalEquations) {
  Rng rng(7);
  const Matrix a = RandomMatrix(20, 5, &rng);
  Vector b(20);
  for (int i = 0; i < 20; ++i) b[i] = rng.NextGaussian();
  // Reference: solve (A^T A) x = A^T b by Cholesky.
  Matrix gram = Gram(a);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(gram));
  const Vector reference = chol.Solve(MultiplyTransposed(a, b));

  const DenseOperator op(&a);
  LsqrOptions options;
  options.max_iterations = 100;
  const LsqrResult result = Lsqr(op, b, options);
  EXPECT_LT(MaxAbsDiff(result.x, reference), 1e-6);
}

TEST(LsqrTest, DampedMatchesRidgeNormalEquations) {
  Rng rng(8);
  const Matrix a = RandomMatrix(15, 6, &rng);
  Vector b(15);
  for (int i = 0; i < 15; ++i) b[i] = rng.NextGaussian();
  const double alpha = 0.7;
  // Reference: (A^T A + alpha I) x = A^T b.
  Matrix gram = Gram(a);
  AddDiagonal(alpha, &gram);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(gram));
  const Vector reference = chol.Solve(MultiplyTransposed(a, b));

  const DenseOperator op(&a);
  LsqrOptions options;
  options.max_iterations = 200;
  options.damp = std::sqrt(alpha);  // damp^2 == alpha
  options.atol = 1e-12;
  options.btol = 1e-12;
  const LsqrResult result = Lsqr(op, b, options);
  EXPECT_LT(MaxAbsDiff(result.x, reference), 1e-6);
}

TEST(LsqrTest, UnderdeterminedRidgeRegularized) {
  // More unknowns than equations: damping selects the unique ridge solution.
  Rng rng(9);
  const Matrix a = RandomMatrix(4, 10, &rng);
  Vector b(4);
  for (int i = 0; i < 4; ++i) b[i] = rng.NextGaussian();
  const double alpha = 0.5;
  Matrix gram = Gram(a);  // 10x10, singular without the ridge
  AddDiagonal(alpha, &gram);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(gram));
  const Vector reference = chol.Solve(MultiplyTransposed(a, b));

  const DenseOperator op(&a);
  LsqrOptions options;
  options.max_iterations = 300;
  options.damp = std::sqrt(alpha);
  options.atol = 1e-13;
  options.btol = 1e-13;
  const LsqrResult result = Lsqr(op, b, options);
  EXPECT_LT(MaxAbsDiff(result.x, reference), 1e-6);
}

TEST(LsqrTest, SparseOperatorPath) {
  Rng rng(10);
  SparseMatrixBuilder builder(30, 12);
  for (int i = 0; i < 30; ++i) {
    for (int j = 0; j < 12; ++j) {
      if (rng.NextDouble() < 0.25) builder.Add(i, j, rng.NextGaussian());
    }
  }
  const SparseMatrix sparse = std::move(builder).Build();
  const Matrix dense = sparse.ToDense();
  Vector b(30);
  for (int i = 0; i < 30; ++i) b[i] = rng.NextGaussian();

  LsqrOptions options;
  options.max_iterations = 150;
  const SparseOperator sparse_op(&sparse);
  const DenseOperator dense_op(&dense);
  const LsqrResult sparse_result = Lsqr(sparse_op, b, options);
  const LsqrResult dense_result = Lsqr(dense_op, b, options);
  EXPECT_LT(MaxAbsDiff(sparse_result.x, dense_result.x), 1e-9);
}

TEST(LsqrTest, IterationCapRespected) {
  Rng rng(11);
  const Matrix a = RandomMatrix(50, 40, &rng);
  Vector b(50);
  for (int i = 0; i < 50; ++i) b[i] = rng.NextGaussian();
  const DenseOperator op(&a);
  LsqrOptions options;
  options.max_iterations = 5;
  options.atol = 0.0;
  options.btol = 0.0;
  const LsqrResult result = Lsqr(op, b, options);
  EXPECT_EQ(result.iterations, 5);
  EXPECT_FALSE(result.converged);
}

TEST(LsqrTest, ResidualNormEstimateAccurate) {
  Rng rng(12);
  const Matrix a = RandomMatrix(25, 8, &rng);
  Vector b(25);
  for (int i = 0; i < 25; ++i) b[i] = rng.NextGaussian();
  const DenseOperator op(&a);
  LsqrOptions options;
  options.max_iterations = 100;
  const LsqrResult result = Lsqr(op, b, options);
  Vector residual = Multiply(a, result.x);
  Axpy(-1.0, b, &residual);
  EXPECT_NEAR(result.residual_norm, Norm2(residual),
              1e-6 * (1.0 + Norm2(residual)));
}

// Regression test: with damp > 0 the reported residual must be the norm of
// the AUGMENTED residual ||[b;0] - [A; damp*I] x||, which requires
// accumulating psi^2 across all iterations (Paige & Saunders), not just the
// final one.
TEST(LsqrTest, DampedResidualNormMatchesAugmentedSystem) {
  Rng rng(14);
  const Matrix a = RandomMatrix(25, 8, &rng);
  Vector b(25);
  for (int i = 0; i < 25; ++i) b[i] = rng.NextGaussian();
  const double damp = 0.9;

  const DenseOperator op(&a);
  LsqrOptions options;
  options.max_iterations = 100;
  options.damp = damp;
  options.atol = 1e-14;
  options.btol = 1e-14;
  const LsqrResult result = Lsqr(op, b, options);

  // Explicit augmented residual: ||b - A x||^2 + damp^2 ||x||^2.
  Vector residual = Multiply(a, result.x);
  Axpy(-1.0, b, &residual);
  const double r2 = Dot(residual, residual);
  const double x2 = Dot(result.x, result.x);
  const double explicit_norm = std::sqrt(r2 + damp * damp * x2);
  EXPECT_NEAR(result.residual_norm, explicit_norm, 1e-10 * explicit_norm);
}

TEST(CenterColumnsOperatorTest, MatchesExplicitlyCenteredMatrix) {
  Rng rng(15);
  const Matrix a = RandomMatrix(9, 5, &rng);
  const Vector mean = ColumnMeans(a);
  Matrix centered_dense = a;
  SubtractRowVector(mean, &centered_dense);

  const DenseOperator base(&a);
  const CenterColumnsOperator op(&base, &mean);
  EXPECT_EQ(op.rows(), 9);
  EXPECT_EQ(op.cols(), 5);

  Vector x(5);
  for (int i = 0; i < 5; ++i) x[i] = rng.NextGaussian();
  EXPECT_LT(MaxAbsDiff(op.Apply(x), Multiply(centered_dense, x)), 1e-13);

  Vector y(9);
  for (int i = 0; i < 9; ++i) y[i] = rng.NextGaussian();
  EXPECT_LT(
      MaxAbsDiff(op.ApplyTransposed(y), MultiplyTransposed(centered_dense, y)),
      1e-13);
}

TEST(CenterColumnsOperatorTest, AdjointIdentity) {
  Rng rng(16);
  const Matrix a = RandomMatrix(8, 6, &rng);
  const Vector mean = ColumnMeans(a);
  const DenseOperator base(&a);
  const CenterColumnsOperator op(&base, &mean);
  Vector x(6);
  Vector y(8);
  for (int i = 0; i < 6; ++i) x[i] = rng.NextGaussian();
  for (int i = 0; i < 8; ++i) y[i] = rng.NextGaussian();
  EXPECT_NEAR(Dot(op.Apply(x), y), Dot(x, op.ApplyTransposed(y)), 1e-10);
}

TEST(LsqrDeathTest, RhsSizeMismatchAborts) {
  const Matrix a(3, 2);
  const DenseOperator op(&a);
  EXPECT_DEATH(Lsqr(op, Vector(2)), "size mismatch");
}

// The paper's claim: ~15-20 iterations are enough for regression problems.
TEST(LsqrTest, TwentyIterationsNearConvergedOnWellConditioned) {
  Rng rng(13);
  const Matrix a = RandomMatrix(100, 20, &rng);
  Vector b(100);
  for (int i = 0; i < 100; ++i) b[i] = rng.NextGaussian();

  Matrix gram = Gram(a);
  AddDiagonal(1.0, &gram);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(gram));
  const Vector reference = chol.Solve(MultiplyTransposed(a, b));

  const DenseOperator op(&a);
  LsqrOptions options;
  options.max_iterations = 20;
  options.damp = 1.0;
  const LsqrResult result = Lsqr(op, b, options);
  EXPECT_LT(MaxAbsDiff(result.x, reference), 1e-4);
}

}  // namespace
}  // namespace srda
