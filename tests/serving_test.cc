// Tests for the micro-batching prediction service (src/serve): batched
// serving must reproduce single-pass scoring exactly under any traffic
// interleaving, respect the batching policy, and return raw labels.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/trainers.h"
#include "model/model.h"
#include "obs/http.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "serve/serving.h"
#include "serve/telemetry.h"

namespace srda {
namespace {

struct Fixture {
  model::SrdaModel model;
  Matrix queries;
  std::vector<int> expected;  // raw labels, single-pass reference
};

Fixture MakeFixture(int train_rows, int query_rows, int cols, int classes,
                    std::vector<int> raw_labels) {
  Fixture f;
  Rng rng(99);
  Matrix x(train_rows, cols);
  std::vector<int> labels;
  for (int i = 0; i < train_rows; ++i) {
    const int label = i % classes;
    labels.push_back(label);
    for (int j = 0; j < cols; ++j) {
      x(i, j) = 5.0 * (j % classes == label) + rng.NextGaussian();
    }
  }
  const TrainResult fit = TrainDenseByName("srda", x, labels, classes);
  f.model = model::BuildModel(fit.embedding, fit.embedding.Transform(x),
                              labels, classes, std::move(raw_labels), {});
  f.queries = Matrix(query_rows, cols);
  for (int i = 0; i < query_rows; ++i) {
    for (int j = 0; j < cols; ++j) f.queries(i, j) = rng.NextGaussian();
  }
  CentroidClassifier reference;
  reference.SetCentroids(f.model.centroids);
  f.expected = f.model.ToRawLabels(
      reference.ScoreBatch(f.model.embedding.Transform(f.queries)));
  return f;
}

TEST(ServingTest, SingleClientMatchesDirectScoring) {
  const Fixture f = MakeFixture(60, 200, 6, 3, {});
  serve::PredictionService service(&f.model);
  EXPECT_EQ(service.Predict(f.queries), f.expected);
}

TEST(ServingTest, SingleQueryPath) {
  const Fixture f = MakeFixture(40, 10, 5, 2, {});
  serve::PredictionService service(&f.model);
  for (int i = 0; i < f.queries.rows(); ++i) {
    EXPECT_EQ(service.Predict(f.queries.RowPtr(i)),
              f.expected[static_cast<size_t>(i)]);
  }
}

TEST(ServingTest, ConcurrentClientsBatchedScoringIsExact) {
  // Many clients hammer the service with overlapping blocks; every response
  // must equal the single-pass reference no matter how rows were batched.
  const Fixture f = MakeFixture(80, 64, 8, 4, {});
  serve::ServeOptions options;
  options.max_batch = 32;
  options.max_delay_ms = 0.5;
  serve::PredictionService service(&f.model, options);
  constexpr int kClients = 8;
  constexpr int kRounds = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&f, &service, &mismatches, c] {
      // Each client repeatedly submits a distinct slice of the queries.
      const int begin = (c * 8) % f.queries.rows();
      const int rows = 8;
      Matrix block(rows, f.queries.cols());
      for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < f.queries.cols(); ++j) {
          block(i, j) = f.queries((begin + i) % f.queries.rows(), j);
        }
      }
      for (int round = 0; round < kRounds; ++round) {
        const std::vector<int> got = service.Predict(block);
        for (int i = 0; i < rows; ++i) {
          if (got[static_cast<size_t>(i)] !=
              f.expected[static_cast<size_t>((begin + i) %
                                             f.queries.rows())]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);

  const serve::ServeStats stats = service.Stats();
  EXPECT_EQ(stats.requests, static_cast<int64_t>(kClients) * kRounds * 8);
  EXPECT_GT(stats.batches, 0);
  EXPECT_LE(stats.max_batch_seen, options.max_batch);
  EXPECT_EQ(stats.latencies_us.size(),
            static_cast<size_t>(stats.requests));
}

TEST(ServingTest, RawLabelsComeBack) {
  const Fixture f = MakeFixture(60, 30, 6, 3, {10, 20, 30});
  serve::PredictionService service(&f.model);
  for (int raw : service.Predict(f.queries)) {
    EXPECT_TRUE(raw == 10 || raw == 20 || raw == 30);
  }
  EXPECT_EQ(service.Predict(f.queries), f.expected);
}

TEST(ServingTest, MaxBatchRespectedUnderBlockLargerThanBatch) {
  // A single 100-row block must be split into <=16-row batches.
  const Fixture f = MakeFixture(40, 100, 5, 2, {});
  serve::ServeOptions options;
  options.max_batch = 16;
  serve::PredictionService service(&f.model, options);
  EXPECT_EQ(service.Predict(f.queries), f.expected);
  const serve::ServeStats stats = service.Stats();
  EXPECT_LE(stats.max_batch_seen, 16);
  EXPECT_GE(stats.batches, (100 + 15) / 16);
}

TEST(ServingTest, LatencyQuantileNearestRank) {
  EXPECT_EQ(serve::LatencyQuantile({}, 0.5), 0.0);
  EXPECT_EQ(serve::LatencyQuantile({7.0}, 0.5), 7.0);
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_EQ(serve::LatencyQuantile(v, 0.0), 1.0);
  EXPECT_EQ(serve::LatencyQuantile(v, 0.5), 3.0);
  EXPECT_EQ(serve::LatencyQuantile(v, 1.0), 5.0);
}

// Pulls the value of the sample line that starts with `name_and_labels`
// (exact prefix up to the value separator) out of a Prometheus text page.
// NaN when absent.
double ScrapeValue(const std::string& text,
                   const std::string& name_and_labels) {
  std::istringstream in(text);
  std::string line;
  const std::string prefix = name_and_labels + " ";
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) {
      return std::strtod(line.c_str() + prefix.size(), nullptr);
    }
  }
  return std::nan("");
}

// Acceptance: a live scrape during serving must return valid Prometheus
// text whose windowed request count and latency quantiles agree with the
// service's own end-of-run stats (the window spans the whole run, so the
// windowed view and the cumulative view see the same traffic).
TEST(ServingTest, TelemetryScrapeMatchesServingStats) {
  // The serving instruments are process-wide; clear anything earlier
  // tests in this binary fed into the windowed twins.
  MetricsRegistry::Global().windowed_counter("serve.requests")->Reset();
  MetricsRegistry::Global().windowed_histogram("serve.batch_size")->Reset();
  MetricsRegistry::Global().windowed_histogram("serve.latency_us")->Reset();

  constexpr int kWindow = 120;  // >> run length: nothing ages out
  serve::TelemetryServer telemetry(kWindow);
  ASSERT_TRUE(telemetry.Start(0));
  ASSERT_GT(telemetry.port(), 0);

  // /healthz is 503 until the model is declared loaded.
  int status = 0;
  std::string body;
  ASSERT_TRUE(obs::ParseHttpResponse(
      obs::HttpGet(telemetry.port(), "/healthz"), &status, &body));
  EXPECT_EQ(status, 503);

  const Fixture f = MakeFixture(80, 64, 6, 3, {});
  telemetry.SetReady(true);
  telemetry.SetBuildInfo("model", "in-memory-fixture");
  ASSERT_TRUE(obs::ParseHttpResponse(
      obs::HttpGet(telemetry.port(), "/healthz"), &status, &body));
  EXPECT_EQ(status, 200);

  serve::ServeOptions options;
  options.max_batch = 16;
  serve::PredictionService service(&f.model, options);
  constexpr int kRounds = 25;
  for (int round = 0; round < kRounds; ++round) {
    EXPECT_EQ(service.Predict(f.queries), f.expected);
  }
  const serve::ServeStats stats = service.Stats();
  ASSERT_EQ(stats.requests, static_cast<int64_t>(kRounds) * 64);

  // Live scrape while the service (and its dispatcher thread) is up.
  std::string raw = obs::HttpGet(telemetry.port(), "/metrics");
  ASSERT_TRUE(obs::ParseHttpResponse(raw, &status, &body));
  EXPECT_EQ(status, 200);
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(
      body,
      {"srda_up", "srda_serve_requests", "srda_serve_requests_window_sum",
       "srda_serve_latency_us_window_count"},
      &error))
      << error;

  const std::string window_label = "{window=\"" + std::to_string(kWindow) +
                                   "\"}";
  // Windowed request count == the service's own request count (the window
  // covers the whole run).
  EXPECT_DOUBLE_EQ(
      ScrapeValue(body, "srda_serve_requests_window_sum" + window_label),
      static_cast<double>(stats.requests));
  EXPECT_DOUBLE_EQ(
      ScrapeValue(body, "srda_serve_latency_us_window_count" + window_label),
      static_cast<double>(stats.requests));
  // The windowed QPS gauge exists and is positive under live traffic.
  EXPECT_GT(
      ScrapeValue(body, "srda_serve_requests_window_rate" + window_label),
      0.0);

  // Windowed quantiles come from power-of-two buckets, so they match the
  // exact nearest-rank quantiles within a bucket (factor-of-two bracket,
  // with slack for boundary rounding).
  const double exact_p50 = serve::LatencyQuantile(stats.latencies_us, 0.5);
  const double exact_p99 = serve::LatencyQuantile(stats.latencies_us, 0.99);
  const double scraped_p50 = ScrapeValue(
      body, "srda_serve_latency_us_window{window=\"" +
                std::to_string(kWindow) + "\",quantile=\"0.5\"}");
  const double scraped_p99 = ScrapeValue(
      body, "srda_serve_latency_us_window{window=\"" +
                std::to_string(kWindow) + "\",quantile=\"0.99\"}");
  ASSERT_FALSE(std::isnan(scraped_p50));
  ASSERT_FALSE(std::isnan(scraped_p99));
  EXPECT_GT(scraped_p50, 0.0);
  EXPECT_GE(scraped_p50, exact_p50 / 4.0);
  EXPECT_LE(scraped_p50, exact_p50 * 4.0 + 1.0);
  EXPECT_GE(scraped_p99, exact_p99 / 4.0);
  EXPECT_LE(scraped_p99, exact_p99 * 4.0 + 1.0);
  EXPECT_GE(scraped_p99, scraped_p50);

  // /metrics.json is one parseable object; /buildz carries the row we set.
  ASSERT_TRUE(obs::ParseHttpResponse(
      obs::HttpGet(telemetry.port(), "/metrics.json"), &status, &body));
  EXPECT_EQ(status, 200);
  JsonValue root;
  EXPECT_TRUE(ParseJson(body, &root, &error)) << error;
  ASSERT_TRUE(obs::ParseHttpResponse(
      obs::HttpGet(telemetry.port(), "/buildz"), &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("in-memory-fixture"), std::string::npos);

  // Readiness can be withdrawn.
  telemetry.SetReady(false);
  ASSERT_TRUE(obs::ParseHttpResponse(
      obs::HttpGet(telemetry.port(), "/healthz"), &status, &body));
  EXPECT_EQ(status, 503);
  EXPECT_GE(telemetry.scrapes(), 6);
  telemetry.Stop();
}

TEST(ServingDeathTest, QueryWidthMismatchAborts) {
  const Fixture f = MakeFixture(40, 4, 5, 2, {});
  serve::PredictionService service(&f.model);
  Matrix wrong(2, 3);
  EXPECT_DEATH(service.Predict(wrong), "query width");
}

}  // namespace
}  // namespace srda
