// Tests for the micro-batching prediction service (src/serve): batched
// serving must reproduce single-pass scoring exactly under any traffic
// interleaving, respect the batching policy, and return raw labels.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/trainers.h"
#include "model/model.h"
#include "serve/serving.h"

namespace srda {
namespace {

struct Fixture {
  model::SrdaModel model;
  Matrix queries;
  std::vector<int> expected;  // raw labels, single-pass reference
};

Fixture MakeFixture(int train_rows, int query_rows, int cols, int classes,
                    std::vector<int> raw_labels) {
  Fixture f;
  Rng rng(99);
  Matrix x(train_rows, cols);
  std::vector<int> labels;
  for (int i = 0; i < train_rows; ++i) {
    const int label = i % classes;
    labels.push_back(label);
    for (int j = 0; j < cols; ++j) {
      x(i, j) = 5.0 * (j % classes == label) + rng.NextGaussian();
    }
  }
  const TrainResult fit = TrainDenseByName("srda", x, labels, classes);
  f.model = model::BuildModel(fit.embedding, fit.embedding.Transform(x),
                              labels, classes, std::move(raw_labels), {});
  f.queries = Matrix(query_rows, cols);
  for (int i = 0; i < query_rows; ++i) {
    for (int j = 0; j < cols; ++j) f.queries(i, j) = rng.NextGaussian();
  }
  CentroidClassifier reference;
  reference.SetCentroids(f.model.centroids);
  f.expected = f.model.ToRawLabels(
      reference.ScoreBatch(f.model.embedding.Transform(f.queries)));
  return f;
}

TEST(ServingTest, SingleClientMatchesDirectScoring) {
  const Fixture f = MakeFixture(60, 200, 6, 3, {});
  serve::PredictionService service(&f.model);
  EXPECT_EQ(service.Predict(f.queries), f.expected);
}

TEST(ServingTest, SingleQueryPath) {
  const Fixture f = MakeFixture(40, 10, 5, 2, {});
  serve::PredictionService service(&f.model);
  for (int i = 0; i < f.queries.rows(); ++i) {
    EXPECT_EQ(service.Predict(f.queries.RowPtr(i)),
              f.expected[static_cast<size_t>(i)]);
  }
}

TEST(ServingTest, ConcurrentClientsBatchedScoringIsExact) {
  // Many clients hammer the service with overlapping blocks; every response
  // must equal the single-pass reference no matter how rows were batched.
  const Fixture f = MakeFixture(80, 64, 8, 4, {});
  serve::ServeOptions options;
  options.max_batch = 32;
  options.max_delay_ms = 0.5;
  serve::PredictionService service(&f.model, options);
  constexpr int kClients = 8;
  constexpr int kRounds = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&f, &service, &mismatches, c] {
      // Each client repeatedly submits a distinct slice of the queries.
      const int begin = (c * 8) % f.queries.rows();
      const int rows = 8;
      Matrix block(rows, f.queries.cols());
      for (int i = 0; i < rows; ++i) {
        for (int j = 0; j < f.queries.cols(); ++j) {
          block(i, j) = f.queries((begin + i) % f.queries.rows(), j);
        }
      }
      for (int round = 0; round < kRounds; ++round) {
        const std::vector<int> got = service.Predict(block);
        for (int i = 0; i < rows; ++i) {
          if (got[static_cast<size_t>(i)] !=
              f.expected[static_cast<size_t>((begin + i) %
                                             f.queries.rows())]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);

  const serve::ServeStats stats = service.Stats();
  EXPECT_EQ(stats.requests, static_cast<int64_t>(kClients) * kRounds * 8);
  EXPECT_GT(stats.batches, 0);
  EXPECT_LE(stats.max_batch_seen, options.max_batch);
  EXPECT_EQ(stats.latencies_us.size(),
            static_cast<size_t>(stats.requests));
}

TEST(ServingTest, RawLabelsComeBack) {
  const Fixture f = MakeFixture(60, 30, 6, 3, {10, 20, 30});
  serve::PredictionService service(&f.model);
  for (int raw : service.Predict(f.queries)) {
    EXPECT_TRUE(raw == 10 || raw == 20 || raw == 30);
  }
  EXPECT_EQ(service.Predict(f.queries), f.expected);
}

TEST(ServingTest, MaxBatchRespectedUnderBlockLargerThanBatch) {
  // A single 100-row block must be split into <=16-row batches.
  const Fixture f = MakeFixture(40, 100, 5, 2, {});
  serve::ServeOptions options;
  options.max_batch = 16;
  serve::PredictionService service(&f.model, options);
  EXPECT_EQ(service.Predict(f.queries), f.expected);
  const serve::ServeStats stats = service.Stats();
  EXPECT_LE(stats.max_batch_seen, 16);
  EXPECT_GE(stats.batches, (100 + 15) / 16);
}

TEST(ServingTest, LatencyQuantileNearestRank) {
  EXPECT_EQ(serve::LatencyQuantile({}, 0.5), 0.0);
  EXPECT_EQ(serve::LatencyQuantile({7.0}, 0.5), 7.0);
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_EQ(serve::LatencyQuantile(v, 0.0), 1.0);
  EXPECT_EQ(serve::LatencyQuantile(v, 0.5), 3.0);
  EXPECT_EQ(serve::LatencyQuantile(v, 1.0), 5.0);
}

TEST(ServingDeathTest, QueryWidthMismatchAborts) {
  const Fixture f = MakeFixture(40, 4, 5, 2, {});
  serve::PredictionService service(&f.model);
  Matrix wrong(2, 3);
  EXPECT_DEATH(service.Predict(wrong), "query width");
}

}  // namespace
}  // namespace srda
