// Tests for the cache-blocking layer: blocked level-3 kernels against the
// srda::naive references at adversarial sizes, the blocked Cholesky against
// the serial reference, the batched SolveMatrix, bitwise thread-count
// determinism of the blocked paths, SRDA_BLOCK_* config resolution, and the
// runtime flop counter.

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "common/flops.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "linalg/cholesky.h"
#include "matrix/blas.h"
#include "matrix/blocking.h"

namespace srda {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

// Symmetric positive definite: G = A^T A + n*I via the naive kernels so the
// input does not depend on the code under test.
Matrix RandomSpd(int n, Rng* rng) {
  const Matrix a = RandomMatrix(n + 3, n, rng);
  Matrix g = naive::Gram(a);
  for (int i = 0; i < n; ++i) g(i, i) += n;
  return g;
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const size_t bytes =
      static_cast<size_t>(a.rows()) * a.cols() * sizeof(double);
  return bytes == 0 || std::memcmp(a.data(), b.data(), bytes) == 0;
}

// The blocked kernels drop the naive loops' zero-skips and reassociate the
// k-sums across panels, so agreement is to rounding, not bitwise.
void ExpectNear(const Matrix& a, const Matrix& b, double tolerance) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_LE(MaxAbsDiff(a, b), tolerance);
}

// Restores the default block config and a single-threaded pool after each
// test, so tests that shrink tiles or raise the thread count cannot leak
// into later ones.
class BlockingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetBlockConfig(BlockConfig{});
    SetGlobalThreadCount(1);
  }
};

// Sizes straddling every default tile boundary: 1, tiny, mc +/- 1, nb +/- 1,
// kc +/- 1, and non-multiples of everything.
constexpr int kEdgeSizes[] = {1, 2, 7, 31, 32, 33, 63, 64, 65, 100, 129};

TEST_F(BlockingTest, MultiplyMatchesNaiveAtEdgeSizes) {
  Rng rng(11);
  for (const int n : kEdgeSizes) {
    const Matrix a = RandomMatrix(n, n + 3, &rng);
    const Matrix b = RandomMatrix(n + 3, n + 1, &rng);
    ExpectNear(Multiply(a, b), naive::Multiply(a, b), 1e-11 * (n + 3));
  }
}

TEST_F(BlockingTest, MultiplyTransposedAMatchesNaiveAtEdgeSizes) {
  Rng rng(12);
  for (const int n : kEdgeSizes) {
    const Matrix a = RandomMatrix(n + 2, n, &rng);
    const Matrix b = RandomMatrix(n + 2, n + 1, &rng);
    ExpectNear(MultiplyTransposedA(a, b), naive::MultiplyTransposedA(a, b),
               1e-11 * (n + 2));
  }
}

TEST_F(BlockingTest, MultiplyTransposedBMatchesNaiveAtEdgeSizes) {
  Rng rng(13);
  for (const int n : kEdgeSizes) {
    const Matrix a = RandomMatrix(n, n + 2, &rng);
    const Matrix b = RandomMatrix(n + 1, n + 2, &rng);
    ExpectNear(MultiplyTransposedB(a, b), naive::MultiplyTransposedB(a, b),
               1e-11 * (n + 2));
  }
}

TEST_F(BlockingTest, GramMatchesNaiveAtEdgeSizes) {
  Rng rng(14);
  for (const int n : kEdgeSizes) {
    const Matrix a = RandomMatrix(n + 5, n, &rng);
    ExpectNear(Gram(a), naive::Gram(a), 1e-11 * (n + 5));
  }
}

TEST_F(BlockingTest, OuterGramMatchesNaiveAtEdgeSizes) {
  Rng rng(15);
  for (const int n : kEdgeSizes) {
    const Matrix a = RandomMatrix(n, n + 5, &rng);
    ExpectNear(OuterGram(a), naive::OuterGram(a), 1e-11 * (n + 5));
  }
}

TEST_F(BlockingTest, SymmetricProductsFillBothTriangles) {
  Rng rng(16);
  const Matrix a = RandomMatrix(70, 67, &rng);
  const Matrix g = Gram(a);
  const Matrix o = OuterGram(a);
  for (int i = 0; i < g.rows(); ++i) {
    for (int j = 0; j < i; ++j) {
      ASSERT_EQ(g(i, j), g(j, i)) << "Gram mirror at " << i << "," << j;
    }
  }
  for (int i = 0; i < o.rows(); ++i) {
    for (int j = 0; j < i; ++j) {
      ASSERT_EQ(o(i, j), o(j, i)) << "OuterGram mirror at " << i << "," << j;
    }
  }
}

// Shrinking the tiles to a few elements forces many partial panels and
// cleanup paths through every micro-kernel.
TEST_F(BlockingTest, TinyTilesStillAgreeWithNaive) {
  BlockConfig tiny;
  tiny.kc = 8;
  tiny.mc = 4;
  tiny.nc = 8;
  tiny.nb = 8;
  SetBlockConfig(tiny);
  Rng rng(17);
  const Matrix a = RandomMatrix(53, 47, &rng);
  const Matrix b = RandomMatrix(47, 39, &rng);
  const Matrix bt = RandomMatrix(41, 47, &rng);
  ExpectNear(Multiply(a, b), naive::Multiply(a, b), 1e-10);
  ExpectNear(MultiplyTransposedA(a, a), naive::MultiplyTransposedA(a, a),
             1e-10);
  ExpectNear(MultiplyTransposedB(a, bt), naive::MultiplyTransposedB(a, bt),
             1e-10);
  ExpectNear(Gram(a), naive::Gram(a), 1e-10);
  ExpectNear(OuterGram(a), naive::OuterGram(a), 1e-10);
}

TEST_F(BlockingTest, TileShapeDoesNotChangeBits) {
  // Tile boundaries must be invisible in the result: each element owns one
  // accumulation chain whatever the panel sizes are.
  Rng rng(18);
  const Matrix a = RandomMatrix(61, 58, &rng);
  const Matrix b = RandomMatrix(58, 45, &rng);
  SetBlockConfig(BlockConfig{});
  const Matrix product_default = Multiply(a, b);
  const Matrix gram_default = Gram(a);
  BlockConfig tiny;
  tiny.kc = 5;
  tiny.mc = 3;
  tiny.nc = 7;
  tiny.nb = 4;
  SetBlockConfig(tiny);
  EXPECT_TRUE(BitwiseEqual(Multiply(a, b), product_default));
  EXPECT_TRUE(BitwiseEqual(Gram(a), gram_default));
}

TEST_F(BlockingTest, SetBlockConfigRejectsNonPositiveFields) {
  BlockConfig bad;
  bad.kc = -3;
  bad.mc = 0;
  bad.nc = 17;
  bad.nb = -1;
  SetBlockConfig(bad);
  const BlockConfig defaults;
  const BlockConfig& active = GetBlockConfig();
  EXPECT_EQ(active.kc, defaults.kc);
  EXPECT_EQ(active.mc, defaults.mc);
  EXPECT_EQ(active.nc, 17);
  EXPECT_EQ(active.nb, defaults.nb);
}

TEST_F(BlockingTest, BlockedCholeskyMatchesNaiveFactor) {
  Rng rng(19);
  // Sizes around the default panel width and with several full panels.
  for (const int n : {1, 2, 63, 64, 65, 100, 150}) {
    const Matrix spd = RandomSpd(n, &rng);
    Cholesky chol;
    ASSERT_TRUE(chol.Factor(spd)) << "n=" << n;
    Matrix reference;
    ASSERT_TRUE(naive::CholeskyFactor(spd, &reference)) << "n=" << n;
    ExpectNear(chol.factor(), reference, 1e-9 * n);
    // Lower-triangular with positive diagonal.
    for (int i = 0; i < n; ++i) {
      EXPECT_GT(chol.factor()(i, i), 0.0);
      for (int j = i + 1; j < n; ++j) EXPECT_EQ(chol.factor()(i, j), 0.0);
    }
    // L L^T reconstructs the input.
    const Matrix rebuilt =
        MultiplyTransposedB(chol.factor(), chol.factor());
    ExpectNear(rebuilt, spd, 1e-9 * n);
  }
}

TEST_F(BlockingTest, BlockedCholeskyRejectsIndefiniteInLaterPanel) {
  Rng rng(20);
  // Poison a diagonal entry well past the first panel so the failure is
  // detected inside a later FactorDiagonalBlock, after TRSM/SYRK updates.
  const int n = 150;
  Matrix spd = RandomSpd(n, &rng);
  spd(120, 120) = -5.0;
  Cholesky chol;
  EXPECT_FALSE(chol.Factor(spd));
  EXPECT_FALSE(chol.ok());
}

TEST_F(BlockingTest, BlockedCholeskyPanelWidthDoesNotChangeCorrectness) {
  Rng rng(21);
  const int n = 97;
  const Matrix spd = RandomSpd(n, &rng);
  const Vector b = [&] {
    Vector v(n);
    for (int i = 0; i < n; ++i) v[i] = rng.NextGaussian();
    return v;
  }();
  for (const int nb : {1, 3, 16, 97, 200}) {
    BlockConfig config;
    config.nb = nb;
    SetBlockConfig(config);
    Cholesky chol;
    ASSERT_TRUE(chol.Factor(spd)) << "nb=" << nb;
    const Vector x = chol.Solve(b);
    // Residual check: A x ~= b.
    const Vector ax = Multiply(spd, x);
    EXPECT_LE(MaxAbsDiff(ax, b), 1e-8 * n) << "nb=" << nb;
  }
}

TEST_F(BlockingTest, SolveMatrixMatchesPerColumnSolve) {
  Rng rng(22);
  const int n = 80;
  const int num_rhs = 7;
  const Matrix spd = RandomSpd(n, &rng);
  const Matrix b = RandomMatrix(n, num_rhs, &rng);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(spd));
  const Matrix x = chol.SolveMatrix(b);
  for (int j = 0; j < num_rhs; ++j) {
    const Vector column = chol.Solve(b.Col(j));
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(x(i, j), column[i], 1e-10) << "col " << j;
    }
  }
}

TEST_F(BlockingTest, BackSubstituteTransposedSolvesTransposedSystem) {
  Rng rng(23);
  const int n = 90;
  const Matrix spd = RandomSpd(n, &rng);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(spd));
  const Matrix& l = chol.factor();
  Vector b(n);
  for (int i = 0; i < n; ++i) b[i] = rng.NextGaussian();
  const Vector x = BackSubstituteTransposed(l, b);
  // Check L^T x = b directly: (L^T x)[i] = sum_{k >= i} L(k, i) x[k].
  for (int i = 0; i < n; ++i) {
    double sum = 0.0;
    for (int k = i; k < n; ++k) sum += l(k, i) * x[k];
    EXPECT_NEAR(sum, b[i], 1e-9) << "row " << i;
  }
}

TEST_F(BlockingTest, BlockedCholeskyBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(24);
  const int n = 150;  // Several panels at the default nb = 64.
  const Matrix spd = RandomSpd(n, &rng);
  const Matrix rhs = RandomMatrix(n, 5, &rng);

  SetGlobalThreadCount(1);
  Cholesky chol1;
  ASSERT_TRUE(chol1.Factor(spd));
  const Matrix solve1 = chol1.SolveMatrix(rhs);

  SetGlobalThreadCount(4);
  Cholesky chol4;
  ASSERT_TRUE(chol4.Factor(spd));
  const Matrix solve4 = chol4.SolveMatrix(rhs);
  SetGlobalThreadCount(1);

  EXPECT_TRUE(BitwiseEqual(chol1.factor(), chol4.factor()));
  EXPECT_TRUE(BitwiseEqual(solve1, solve4));
}

TEST_F(BlockingTest, FlopCounterTracksKernelWork) {
  Rng rng(25);
  const int m = 30;
  const int n = 20;
  const Matrix a = RandomMatrix(m, n, &rng);

  const double before_gram = FlopCount();
  const Matrix g = Gram(a);
  EXPECT_DOUBLE_EQ(FlopCount() - before_gram,
                   static_cast<double>(m) * n * (n + 1));

  const double before_multiply = FlopCount();
  const Matrix p = Multiply(a, g);
  EXPECT_DOUBLE_EQ(FlopCount() - before_multiply, 2.0 * m * n * n);

  ResetFlopCount();
  EXPECT_DOUBLE_EQ(FlopCount(), 0.0);
  Cholesky chol;
  Matrix spd = g;
  for (int i = 0; i < n; ++i) spd(i, i) += n;
  ASSERT_TRUE(chol.Factor(spd));
  EXPECT_GE(FlopCount(), static_cast<double>(n) * n * n / 3.0);
}

}  // namespace
}  // namespace srda
