// Cross-cutting property tests for the discriminant trainers: solver
// equivalences and invariances that must hold across random shapes, class
// counts and regularization strengths.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/lda.h"
#include "core/rlda.h"
#include "core/srda.h"
#include "linalg/qr.h"
#include "matrix/blas.h"

namespace srda {
namespace {

struct Problem {
  Matrix x;
  std::vector<int> labels;
  int num_classes;
};

Problem MakeProblem(int num_classes, int per_class, int dim, double sep,
                    Rng* rng) {
  Problem problem;
  problem.num_classes = num_classes;
  problem.x = Matrix(num_classes * per_class, dim);
  Matrix centers(num_classes, dim);
  for (int k = 0; k < num_classes; ++k) {
    for (int j = 0; j < dim; ++j) centers(k, j) = rng->NextGaussian() * sep;
  }
  for (int k = 0; k < num_classes; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < dim; ++j) {
        problem.x(row, j) = centers(k, j) + rng->NextGaussian();
      }
      problem.labels.push_back(k);
    }
  }
  return problem;
}

// Random orthogonal matrix via QR of a Gaussian matrix.
Matrix RandomOrthogonal(int n, Rng* rng) {
  Matrix gaussian(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) gaussian(i, j) = rng->NextGaussian();
  }
  return ThinQr(gaussian).q;
}

// Pairwise embedded distances; invariant fingerprint of an embedding up to
// rotation/reflection of the output space.
Vector PairwiseDistances(const Matrix& embedded) {
  const int m = embedded.rows();
  Vector distances(m * (m - 1) / 2);
  int out = 0;
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      double sum = 0.0;
      for (int d = 0; d < embedded.cols(); ++d) {
        const double diff = embedded(i, d) - embedded(j, d);
        sum += diff * diff;
      }
      distances[out++] = std::sqrt(sum);
    }
  }
  return distances;
}

class SolverEquivalenceTest : public ::testing::TestWithParam<int> {};

// SRDA's two solvers agree on the embedded geometry once LSQR converges.
TEST_P(SolverEquivalenceTest, NormalEquationsMatchConvergedLsqr) {
  Rng rng(2000 + GetParam());
  const int c = 2 + GetParam() % 4;
  const int dim = 4 + (GetParam() * 3) % 12;
  const Problem problem = MakeProblem(c, 14, dim, 3.0, &rng);

  SrdaOptions normal;
  normal.alpha = 0.05 * (1 + GetParam() % 3);
  SrdaOptions lsqr = normal;
  lsqr.solver = SrdaSolver::kLsqr;
  lsqr.lsqr_iterations = 500;
  lsqr.lsqr_atol = 1e-14;
  lsqr.lsqr_btol = 1e-14;

  const SrdaModel a = FitSrda(problem.x, problem.labels, c, normal);
  const SrdaModel b = FitSrda(problem.x, problem.labels, c, lsqr);
  ASSERT_TRUE(a.converged && b.converged);
  const Matrix ea = a.embedding.Transform(problem.x);
  const Matrix eb = b.embedding.Transform(problem.x);
  // The bias is damped slightly differently; compare embedded geometry.
  EXPECT_LT(MaxAbsDiff(PairwiseDistances(ea), PairwiseDistances(eb)),
            2e-2 * (1.0 + NormInf(PairwiseDistances(ea))));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SolverEquivalenceTest,
                         ::testing::Range(0, 8));

class RotationInvarianceTest : public ::testing::TestWithParam<int> {};

// Orthogonally rotating the feature space must leave the embedded geometry
// unchanged for SRDA (the ridge is rotation invariant) and RLDA.
TEST_P(RotationInvarianceTest, SrdaEmbeddingInvariant) {
  Rng rng(3000 + GetParam());
  const int dim = 5 + GetParam() % 7;
  const Problem problem = MakeProblem(3, 12, dim, 2.5, &rng);
  const Matrix rotation = RandomOrthogonal(dim, &rng);
  const Matrix rotated = Multiply(problem.x, rotation);

  const SrdaModel original = FitSrda(problem.x, problem.labels, 3);
  const SrdaModel transformed = FitSrda(rotated, problem.labels, 3);
  ASSERT_TRUE(original.converged && transformed.converged);
  const Vector d1 =
      PairwiseDistances(original.embedding.Transform(problem.x));
  const Vector d2 =
      PairwiseDistances(transformed.embedding.Transform(rotated));
  EXPECT_LT(MaxAbsDiff(d1, d2), 1e-8 * (1.0 + NormInf(d1)));
}

TEST_P(RotationInvarianceTest, RldaEmbeddingInvariant) {
  Rng rng(4000 + GetParam());
  const int dim = 5 + GetParam() % 7;
  const Problem problem = MakeProblem(3, 12, dim, 2.5, &rng);
  const Matrix rotation = RandomOrthogonal(dim, &rng);
  const Matrix rotated = Multiply(problem.x, rotation);

  const RldaModel original = FitRlda(problem.x, problem.labels, 3);
  const RldaModel transformed = FitRlda(rotated, problem.labels, 3);
  ASSERT_TRUE(original.converged && transformed.converged);
  const Vector d1 =
      PairwiseDistances(original.embedding.Transform(problem.x));
  const Vector d2 =
      PairwiseDistances(transformed.embedding.Transform(rotated));
  EXPECT_LT(MaxAbsDiff(d1, d2), 1e-7 * (1.0 + NormInf(d1)));
}

INSTANTIATE_TEST_SUITE_P(Shapes, RotationInvarianceTest,
                         ::testing::Range(0, 6));

class PermutationInvarianceTest : public ::testing::TestWithParam<int> {};

// Reordering the training samples must not change the learned embedding.
TEST_P(PermutationInvarianceTest, SampleOrderIrrelevant) {
  Rng rng(5000 + GetParam());
  const Problem problem = MakeProblem(3, 10, 6, 3.0, &rng);
  const int m = problem.x.rows();
  std::vector<int> order(static_cast<size_t>(m));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  Matrix shuffled(m, 6);
  std::vector<int> shuffled_labels(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < 6; ++j) shuffled(i, j) = problem.x(order[i], j);
    shuffled_labels[static_cast<size_t>(i)] =
        problem.labels[static_cast<size_t>(order[i])];
  }
  const SrdaModel a = FitSrda(problem.x, problem.labels, 3);
  const SrdaModel b = FitSrda(shuffled, shuffled_labels, 3);
  ASSERT_TRUE(a.converged && b.converged);
  // Compare embedded geometry of the SAME points (row i of the original).
  const Matrix ea = a.embedding.Transform(problem.x);
  const Matrix eb = b.embedding.Transform(problem.x);
  EXPECT_LT(MaxAbsDiff(PairwiseDistances(ea), PairwiseDistances(eb)),
            1e-8 * (1.0 + NormInf(PairwiseDistances(ea))));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationInvarianceTest,
                         ::testing::Range(0, 6));

class TranslationInvarianceTest : public ::testing::TestWithParam<int> {};

// Adding a constant offset to every feature must leave embeddings unchanged
// (all trainers center, explicitly or via the bias).
TEST_P(TranslationInvarianceTest, AllTrainersCentered) {
  Rng rng(6000 + GetParam());
  const Problem problem = MakeProblem(3, 12, 5, 3.0, &rng);
  Matrix shifted = problem.x;
  Vector offset(5);
  for (int j = 0; j < 5; ++j) offset[j] = rng.NextUniform(-50.0, 50.0);
  for (int i = 0; i < shifted.rows(); ++i) {
    for (int j = 0; j < 5; ++j) shifted(i, j) += offset[j];
  }

  {
    const SrdaModel a = FitSrda(problem.x, problem.labels, 3);
    const SrdaModel b = FitSrda(shifted, problem.labels, 3);
    EXPECT_LT(MaxAbsDiff(a.embedding.Transform(problem.x),
                         b.embedding.Transform(shifted)),
              1e-7);
  }
  {
    const LdaModel a = FitLda(problem.x, problem.labels, 3);
    const LdaModel b = FitLda(shifted, problem.labels, 3);
    const Vector d1 = PairwiseDistances(a.embedding.Transform(problem.x));
    const Vector d2 = PairwiseDistances(b.embedding.Transform(shifted));
    EXPECT_LT(MaxAbsDiff(d1, d2), 1e-7 * (1.0 + NormInf(d1)));
  }
  {
    const RldaModel a = FitRlda(problem.x, problem.labels, 3);
    const RldaModel b = FitRlda(shifted, problem.labels, 3);
    const Vector d1 = PairwiseDistances(a.embedding.Transform(problem.x));
    const Vector d2 = PairwiseDistances(b.embedding.Transform(shifted));
    EXPECT_LT(MaxAbsDiff(d1, d2), 1e-7 * (1.0 + NormInf(d1)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslationInvarianceTest,
                         ::testing::Range(0, 6));

class AlphaLimitTest : public ::testing::TestWithParam<int> {};

// Theorem 2 sweep: as alpha -> 0 with linearly independent samples, SRDA's
// training classification agrees with LDA's.
TEST_P(AlphaLimitTest, SrdaApproachesLdaClassification) {
  Rng rng(7000 + GetParam());
  const int n = 70 + 5 * GetParam();
  const int per_class = 4;
  Matrix x(3 * per_class, n);
  std::vector<int> labels;
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < n; ++j) {
        x(row, j) = 1.2 * k + rng.NextGaussian();
      }
      labels.push_back(k);
    }
  }
  const LdaModel lda = FitLda(x, labels, 3);
  SrdaOptions options;
  options.alpha = 1e-9;
  const SrdaModel srda_model = FitSrda(x, labels, 3, options);
  ASSERT_TRUE(lda.converged && srda_model.converged);

  CentroidClassifier lda_classifier;
  lda_classifier.Fit(lda.embedding.Transform(x), labels, 3);
  CentroidClassifier srda_classifier;
  srda_classifier.Fit(srda_model.embedding.Transform(x), labels, 3);
  EXPECT_EQ(lda_classifier.Predict(lda.embedding.Transform(x)),
            srda_classifier.Predict(srda_model.embedding.Transform(x)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlphaLimitTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace srda
