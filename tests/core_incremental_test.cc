// Tests for incremental SRDA and the Cholesky rank-1 update it builds on.

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/incremental_srda.h"
#include "core/responses.h"
#include "core/srda.h"
#include "linalg/cholesky.h"
#include "matrix/blas.h"

namespace srda {
namespace {

Matrix RandomSpd(int n, Rng* rng) {
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) a(i, j) = rng->NextGaussian();
  }
  Matrix spd = Gram(a);
  AddDiagonal(1.0, &spd);
  return spd;
}

TEST(CholeskyRank1UpdateTest, MatchesRefactorization) {
  Rng rng(1);
  const int n = 10;
  Matrix a = RandomSpd(n, &rng);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(a));
  Matrix updated_factor = chol.factor();

  Vector v(n);
  for (int i = 0; i < n; ++i) v[i] = rng.NextGaussian();
  CholeskyRank1Update(&updated_factor, v);

  // Reference: factor A + v v^T from scratch.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) a(i, j) += v[i] * v[j];
  }
  Cholesky reference;
  ASSERT_TRUE(reference.Factor(a));
  EXPECT_LT(MaxAbsDiff(updated_factor, reference.factor()), 1e-9);
}

TEST(CholeskyRank1UpdateTest, RepeatedUpdatesStayAccurate) {
  Rng rng(2);
  const int n = 6;
  Matrix a = Matrix::Identity(n);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(a));
  Matrix factor = chol.factor();
  for (int step = 0; step < 50; ++step) {
    Vector v(n);
    for (int i = 0; i < n; ++i) v[i] = rng.NextGaussian();
    CholeskyRank1Update(&factor, v);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) a(i, j) += v[i] * v[j];
    }
  }
  const Matrix reconstructed = MultiplyTransposedB(factor, factor);
  EXPECT_LT(MaxAbsDiff(reconstructed, a), 1e-8 * (1.0 + NormInf(a.Row(0))));
}

TEST(CholeskyRank1UpdateDeathTest, SizeMismatchAborts) {
  Matrix factor = Matrix::Identity(3);
  EXPECT_DEATH(CholeskyRank1Update(&factor, Vector(2)), "size mismatch");
}

void MakeBlobs(int num_classes, int per_class, int dim, Rng* rng, Matrix* x,
               std::vector<int>* labels) {
  *x = Matrix(num_classes * per_class, dim);
  labels->clear();
  for (int k = 0; k < num_classes; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < dim; ++j) {
        (*x)(row, j) = 3.0 * (j % num_classes == k) + rng->NextGaussian();
      }
      labels->push_back(k);
    }
  }
}

TEST(IncrementalSrdaTest, MatchesBatchAugmentedSolution) {
  // Streaming all samples must reproduce the batch augmented ridge solution
  // exactly (same normal equations).
  Rng rng(3);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 12, 7, &rng, &x, &labels);
  const double alpha = 0.8;

  IncrementalSrda incremental(7, 3, alpha);
  for (int i = 0; i < x.rows(); ++i) {
    incremental.AddSample(x.Row(i), labels[static_cast<size_t>(i)]);
  }
  ASSERT_TRUE(incremental.ready());
  const LinearEmbedding streamed = incremental.Solve();

  // Batch reference: solve ([X 1]^T [X 1] + aI) [A; b] = [X 1]^T Y directly.
  const int m = x.rows();
  const int n = 7;
  Matrix augmented(m, n + 1);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) augmented(i, j) = x(i, j);
    augmented(i, n) = 1.0;
  }
  Matrix gram = Gram(augmented);
  AddDiagonal(alpha, &gram);
  Cholesky chol;
  ASSERT_TRUE(chol.Factor(gram));
  const Matrix responses = GenerateSrdaResponses(labels, 3);
  const Matrix solution =
      chol.SolveMatrix(MultiplyTransposedA(augmented, responses));

  for (int d = 0; d < 2; ++d) {
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(streamed.projection()(j, d), solution(j, d), 1e-8)
          << "entry " << j << "," << d;
    }
    EXPECT_NEAR(streamed.bias()[d], solution(n, d), 1e-8);
  }
}

TEST(IncrementalSrdaTest, OrderIndependent) {
  Rng rng(4);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(2, 10, 5, &rng, &x, &labels);

  IncrementalSrda forward(5, 2, 1.0);
  for (int i = 0; i < x.rows(); ++i) {
    forward.AddSample(x.Row(i), labels[static_cast<size_t>(i)]);
  }
  IncrementalSrda backward(5, 2, 1.0);
  for (int i = x.rows() - 1; i >= 0; --i) {
    backward.AddSample(x.Row(i), labels[static_cast<size_t>(i)]);
  }
  const LinearEmbedding a = forward.Solve();
  const LinearEmbedding b = backward.Solve();
  EXPECT_LT(MaxAbsDiff(a.projection(), b.projection()), 1e-8);
  EXPECT_LT(MaxAbsDiff(a.bias(), b.bias()), 1e-8);
}

TEST(IncrementalSrdaTest, ReadyOnlyAfterAllClassesSeen) {
  IncrementalSrda incremental(3, 2, 1.0);
  EXPECT_FALSE(incremental.ready());
  incremental.AddSample(Vector{1.0, 0.0, 0.0}, 0);
  EXPECT_FALSE(incremental.ready());
  incremental.AddSample(Vector{0.0, 1.0, 0.0}, 1);
  EXPECT_TRUE(incremental.ready());
  EXPECT_EQ(incremental.num_samples(), 2);
}

TEST(IncrementalSrdaTest, ClassifiesAfterStreaming) {
  Rng rng(5);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 40, 6, &rng, &x, &labels);
  IncrementalSrda incremental(6, 3, 1.0);
  for (int i = 0; i < x.rows(); ++i) {
    incremental.AddSample(x.Row(i), labels[static_cast<size_t>(i)]);
  }
  const LinearEmbedding embedding = incremental.Solve();
  const Matrix embedded = embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, 3);
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), labels), 0.05);
}

TEST(IncrementalSrdaTest, SolveIsRepeatable) {
  Rng rng(6);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(2, 8, 4, &rng, &x, &labels);
  IncrementalSrda incremental(4, 2, 1.0);
  for (int i = 0; i < x.rows(); ++i) {
    incremental.AddSample(x.Row(i), labels[static_cast<size_t>(i)]);
  }
  const LinearEmbedding a = incremental.Solve();
  const LinearEmbedding b = incremental.Solve();  // Const: no state change.
  EXPECT_EQ(MaxAbsDiff(a.projection(), b.projection()), 0.0);
}

TEST(IncrementalSrdaTest, UpdatesAfterMoreData) {
  // Adding many more samples of a shifted class must move the solution.
  Rng rng(7);
  IncrementalSrda incremental(3, 2, 1.0);
  for (int i = 0; i < 10; ++i) {
    Vector x(3);
    for (int j = 0; j < 3; ++j) x[j] = rng.NextGaussian() + 2.0 * (i % 2);
    incremental.AddSample(x, i % 2);
  }
  const LinearEmbedding before = incremental.Solve();
  for (int i = 0; i < 50; ++i) {
    Vector x(3);
    for (int j = 0; j < 3; ++j) x[j] = rng.NextGaussian() - 5.0;
    incremental.AddSample(x, 0);
  }
  const LinearEmbedding after = incremental.Solve();
  EXPECT_GT(MaxAbsDiff(before.projection(), after.projection()), 1e-4);
}

TEST(IncrementalSrdaDeathTest, BadUsageAborts) {
  IncrementalSrda incremental(3, 2, 1.0);
  EXPECT_DEATH(incremental.AddSample(Vector(2), 0), "feature size");
  EXPECT_DEATH(incremental.AddSample(Vector(3), 2), "outside");
  EXPECT_DEATH(incremental.Solve(), "before every class");
  EXPECT_DEATH(IncrementalSrda(3, 2, 0.0), "alpha");
}

}  // namespace
}  // namespace srda
