// Tests for the kNN affinity graph and semi-supervised SRDA.

#include <cmath>

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/semi_supervised_srda.h"
#include "core/srda.h"
#include "dataset/dataset.h"
#include "graph/knn_graph.h"
#include "matrix/blas.h"

namespace srda {
namespace {

TEST(KnnGraphTest, SymmetricZeroDiagonal) {
  Rng rng(1);
  Matrix x(20, 3);
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 3; ++j) x(i, j) = rng.NextGaussian();
  }
  KnnGraphOptions options;
  options.num_neighbors = 4;
  const SparseMatrix graph = BuildKnnGraph(x, options);
  const Matrix dense = graph.ToDense();
  EXPECT_LT(MaxAbsDiff(dense, dense.Transposed()), 1e-14);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(dense(i, i), 0.0);
}

TEST(KnnGraphTest, NeighborsAreNearby) {
  // Two tight, well-separated clusters: no cross-cluster edges.
  Matrix x(10, 1);
  for (int i = 0; i < 5; ++i) x(i, 0) = 0.0 + 0.01 * i;
  for (int i = 5; i < 10; ++i) x(i, 0) = 100.0 + 0.01 * i;
  KnnGraphOptions options;
  options.num_neighbors = 2;
  const SparseMatrix graph = BuildKnnGraph(x, options);
  const Matrix dense = graph.ToDense();
  for (int i = 0; i < 5; ++i) {
    for (int j = 5; j < 10; ++j) {
      EXPECT_EQ(dense(i, j), 0.0) << i << "," << j;
    }
  }
}

TEST(KnnGraphTest, HeatWeightsInUnitInterval) {
  Rng rng(2);
  Matrix x(15, 2);
  for (int i = 0; i < 15; ++i) {
    for (int j = 0; j < 2; ++j) x(i, j) = rng.NextGaussian();
  }
  KnnGraphOptions options;
  options.num_neighbors = 3;
  options.weights = GraphWeightScheme::kHeatKernel;
  const SparseMatrix graph = BuildKnnGraph(x, options);
  for (int i = 0; i < graph.rows(); ++i) {
    const double* values = graph.RowValues(i);
    for (int e = 0; e < graph.RowNonZeros(i); ++e) {
      EXPECT_GT(values[e], 0.0);
      EXPECT_LE(values[e], 1.0);
    }
  }
}

TEST(KnnGraphTest, BinaryWeights) {
  Matrix x(6, 1);
  for (int i = 0; i < 6; ++i) x(i, 0) = i;
  KnnGraphOptions options;
  options.num_neighbors = 1;
  options.weights = GraphWeightScheme::kBinary;
  const SparseMatrix graph = BuildKnnGraph(x, options);
  // Mutual nearest neighbors get weight 1 (0.5 + 0.5); single-direction
  // edges get 0.5.
  const Matrix dense = graph.ToDense();
  EXPECT_NEAR(dense(0, 1), 1.0, 1e-15);  // 0 and 1 are mutual.
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_TRUE(dense(i, j) == 0.0 || dense(i, j) == 0.5 ||
                  dense(i, j) == 1.0);
    }
  }
}

TEST(KnnGraphTest, DegreesArePositive) {
  Rng rng(3);
  Matrix x(12, 2);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 2; ++j) x(i, j) = rng.NextGaussian();
  }
  const SparseMatrix graph = BuildKnnGraph(x, KnnGraphOptions{});
  const Vector degrees = GraphDegrees(graph);
  for (int i = 0; i < 12; ++i) EXPECT_GT(degrees[i], 0.0);
}

TEST(CosineKnnGraphTest, SymmetricNonNegative) {
  Rng rng(10);
  SparseMatrixBuilder builder(12, 30);
  for (int i = 0; i < 12; ++i) {
    for (int e = 0; e < 6; ++e) {
      builder.Add(i, static_cast<int>(rng.NextUint64Bounded(30)),
                  rng.NextDouble() + 0.1);
    }
  }
  const SparseMatrix x = std::move(builder).Build();
  const SparseMatrix graph = BuildCosineKnnGraph(x, 3);
  const Matrix dense = graph.ToDense();
  EXPECT_LT(MaxAbsDiff(dense, dense.Transposed()), 1e-14);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(dense(i, i), 0.0);
    for (int j = 0; j < 12; ++j) {
      EXPECT_GE(dense(i, j), 0.0);
      EXPECT_LE(dense(i, j), 1.0 + 1e-12);
    }
  }
}

TEST(CosineKnnGraphTest, ConnectsSameTopicDocuments) {
  // Two "topics" with disjoint vocabularies: no cross-topic edges.
  SparseMatrixBuilder builder(8, 20);
  for (int i = 0; i < 4; ++i) {
    builder.Add(i, 0, 1.0);
    builder.Add(i, 1 + i % 2, 0.5);
  }
  for (int i = 4; i < 8; ++i) {
    builder.Add(i, 10, 1.0);
    builder.Add(i, 11 + i % 2, 0.5);
  }
  const SparseMatrix x = std::move(builder).Build();
  const SparseMatrix graph = BuildCosineKnnGraph(x, 2);
  const Matrix dense = graph.ToDense();
  for (int i = 0; i < 4; ++i) {
    for (int j = 4; j < 8; ++j) {
      EXPECT_EQ(dense(i, j), 0.0) << i << "," << j;
    }
  }
}

TEST(SemiSupervisedSrdaTest, SparsePathLearnsTopics) {
  // Sparse documents with 1 labeled doc per topic plus an unlabeled pool.
  Rng rng(11);
  const int per_topic = 30;
  SparseMatrixBuilder builder(2 * per_topic, 100);
  std::vector<int> labels;
  std::vector<int> truth;
  for (int t = 0; t < 2; ++t) {
    for (int d = 0; d < per_topic; ++d) {
      const int row = t * per_topic + d;
      // Topic block [t*40, t*40+30) plus shared background words.
      for (int w = 0; w < 8; ++w) {
        builder.Add(row, t * 40 + static_cast<int>(rng.NextUint64Bounded(30)),
                    1.0);
      }
      for (int w = 0; w < 3; ++w) {
        builder.Add(row, 80 + static_cast<int>(rng.NextUint64Bounded(20)),
                    1.0);
      }
      truth.push_back(t);
      labels.push_back(d < 2 ? t : kUnlabeled);
    }
  }
  const SparseMatrix x = std::move(builder).Build();
  SemiSupervisedSrdaOptions options;
  options.graph.num_neighbors = 5;
  options.graph_weight = 0.5;
  const SemiSupervisedSrdaModel model =
      FitSemiSupervisedSrda(x, labels, 2, options);
  ASSERT_TRUE(model.converged);
  const Matrix embedded = model.embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, truth, 2);
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), truth), 0.15);
}

TEST(KnnGraphDeathTest, TooFewSamplesAborts) {
  EXPECT_DEATH(BuildKnnGraph(Matrix(1, 2), KnnGraphOptions{}), "two samples");
}

// Semi-supervised SRDA -------------------------------------------------

// Two Gaussian blobs with only a few labeled points per class.
void MakeSemiSupervisedBlobs(int per_class, int labeled_per_class, int dim,
                             Rng* rng, Matrix* x, std::vector<int>* labels,
                             std::vector<int>* truth) {
  const int c = 2;
  *x = Matrix(c * per_class, dim);
  labels->clear();
  truth->clear();
  for (int k = 0; k < c; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < dim; ++j) {
        (*x)(row, j) = 3.0 * k * (j == 0) + rng->NextGaussian();
      }
      truth->push_back(k);
      labels->push_back(i < labeled_per_class ? k : kUnlabeled);
    }
  }
}

TEST(SemiSupervisedSrdaTest, TrainsAndSeparates) {
  Rng rng(4);
  Matrix x;
  std::vector<int> labels;
  std::vector<int> truth;
  MakeSemiSupervisedBlobs(40, 5, 4, &rng, &x, &labels, &truth);
  const SemiSupervisedSrdaModel model =
      FitSemiSupervisedSrda(x, labels, 2);
  ASSERT_TRUE(model.converged);
  EXPECT_EQ(model.num_directions, 1);
  const Matrix embedded = model.embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, truth, 2);
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), truth), 0.1);
}

TEST(SemiSupervisedSrdaTest, ReducesToSupervisedWithoutGraph) {
  // graph_weight = 0 and all samples labeled: same subspace as SRDA.
  Rng rng(5);
  Matrix x;
  std::vector<int> labels;
  std::vector<int> truth;
  MakeSemiSupervisedBlobs(30, 30, 5, &rng, &x, &labels, &truth);
  SemiSupervisedSrdaOptions options;
  options.graph_weight = 0.0;
  const SemiSupervisedSrdaModel semi =
      FitSemiSupervisedSrda(x, labels, 2, options);
  const SrdaModel supervised = FitSrda(x, labels, 2);
  ASSERT_TRUE(semi.converged);
  // Directions are parallel up to sign.
  const Vector a = semi.embedding.projection().Col(0);
  const Vector b = supervised.embedding.projection().Col(0);
  const double cosine = Dot(a, b) / (Norm2(a) * Norm2(b));
  EXPECT_GT(std::fabs(cosine), 0.999);
}

TEST(SemiSupervisedSrdaTest, UnlabeledDataImprovesFewLabelCase) {
  // With 2 labels per class in 30 dims, the supervised solution is noisy;
  // the unlabeled structure should help on average. We check the semi-
  // supervised model is not (much) worse and that it trains at all.
  Rng rng(6);
  Matrix x;
  std::vector<int> labels;
  std::vector<int> truth;
  MakeSemiSupervisedBlobs(50, 2, 10, &rng, &x, &labels, &truth);

  const SemiSupervisedSrdaModel semi = FitSemiSupervisedSrda(x, labels, 2);
  ASSERT_TRUE(semi.converged);
  const Matrix semi_embedded = semi.embedding.Transform(x);
  CentroidClassifier semi_classifier;
  semi_classifier.Fit(semi_embedded, truth, 2);
  const double semi_error =
      ErrorRate(semi_classifier.Predict(semi_embedded), truth);

  // Supervised on the labeled subset only.
  std::vector<int> labeled_indices;
  std::vector<int> labeled_labels;
  for (int i = 0; i < static_cast<int>(labels.size()); ++i) {
    if (labels[static_cast<size_t>(i)] != kUnlabeled) {
      labeled_indices.push_back(i);
    }
  }
  DenseDataset full;
  full.features = x;
  full.labels = truth;
  full.num_classes = 2;
  const DenseDataset labeled_only = Subset(full, labeled_indices);
  const SrdaModel supervised =
      FitSrda(labeled_only.features, labeled_only.labels, 2);
  CentroidClassifier supervised_classifier;
  supervised_classifier.Fit(
      supervised.embedding.Transform(labeled_only.features),
      labeled_only.labels, 2);
  const double supervised_error = ErrorRate(
      supervised_classifier.Predict(supervised.embedding.Transform(x)),
      truth);

  EXPECT_LE(semi_error, supervised_error + 0.05);
}

TEST(SemiSupervisedSrdaDeathTest, ClassWithoutLabelsAborts) {
  Matrix x(4, 2);
  EXPECT_DEATH(
      FitSemiSupervisedSrda(x, {0, 0, kUnlabeled, kUnlabeled}, 2),
      "no labeled samples");
}

TEST(SemiSupervisedSrdaDeathTest, BadLabelAborts) {
  Matrix x(3, 2);
  EXPECT_DEATH(FitSemiSupervisedSrda(x, {0, 1, 7}, 2), "outside");
}

}  // namespace
}  // namespace srda
