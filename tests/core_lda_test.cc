// Tests for classical LDA (Section II of the paper).

#include <cmath>

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/lda.h"
#include "matrix/blas.h"

namespace srda {
namespace {

// Three well-separated Gaussian blobs in `dim` dimensions.
void MakeBlobs(int per_class, int dim, double separation, Rng* rng,
               Matrix* x, std::vector<int>* labels) {
  const int c = 3;
  *x = Matrix(c * per_class, dim);
  labels->clear();
  Matrix centers(c, dim);
  for (int k = 0; k < c; ++k) {
    for (int j = 0; j < dim; ++j) {
      centers(k, j) = rng->NextGaussian() * separation;
    }
  }
  for (int k = 0; k < c; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < dim; ++j) {
        (*x)(row, j) = centers(k, j) + rng->NextGaussian();
      }
      labels->push_back(k);
    }
  }
}

TEST(LdaTest, AtMostCMinusOneDirections) {
  Rng rng(1);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(20, 10, 4.0, &rng, &x, &labels);
  const LdaModel model = FitLda(x, labels, 3);
  ASSERT_TRUE(model.converged);
  EXPECT_EQ(model.num_directions, 2);
  EXPECT_EQ(model.embedding.output_dim(), 2);
  EXPECT_EQ(model.embedding.input_dim(), 10);
}

TEST(LdaTest, SeparatesBlobs) {
  Rng rng(2);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(30, 8, 5.0, &rng, &x, &labels);
  const LdaModel model = FitLda(x, labels, 3);
  ASSERT_TRUE(model.converged);
  const Matrix embedded = model.embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, 3);
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), labels), 0.05);
}

TEST(LdaTest, TwoClassMatchesFisherDirection) {
  // For two Gaussian classes with shared covariance, the Fisher direction is
  // proportional to S_w^{-1} (mu_1 - mu_0). LDA's single direction must align.
  Rng rng(3);
  const int per_class = 200;
  const int dim = 4;
  Matrix x(2 * per_class, dim);
  std::vector<int> labels;
  for (int k = 0; k < 2; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < dim; ++j) {
        x(row, j) = (j == 0 ? 3.0 * k : 0.0) + rng.NextGaussian();
      }
      labels.push_back(k);
    }
  }
  const LdaModel model = FitLda(x, labels, 2);
  ASSERT_TRUE(model.converged);
  ASSERT_EQ(model.num_directions, 1);
  const Vector direction = model.embedding.projection().Col(0);
  // The direction should be dominated by coordinate 0.
  double max_other = 0.0;
  for (int j = 1; j < dim; ++j) {
    max_other = std::max(max_other, std::fabs(direction[j]));
  }
  EXPECT_GT(std::fabs(direction[0]), 5.0 * max_other);
}

TEST(LdaTest, WhitenedScaling) {
  // Directions satisfy a^T S_t a = lambda with lambda in (0, 1].
  Rng rng(4);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(40, 6, 3.0, &rng, &x, &labels);
  const LdaModel model = FitLda(x, labels, 3);
  ASSERT_TRUE(model.converged);
  Matrix centered = x;
  SubtractRowVector(ColumnMeans(x), &centered);
  const Matrix st = Gram(centered);
  for (int d = 0; d < model.num_directions; ++d) {
    const Vector a = model.embedding.projection().Col(d);
    const double lambda = Dot(a, Multiply(st, a));
    EXPECT_GT(lambda, 0.0) << "direction " << d;
    EXPECT_LE(lambda, 1.0 + 1e-6) << "direction " << d;
  }
}

TEST(LdaTest, EmbeddingIsCentered) {
  Rng rng(5);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(15, 7, 3.0, &rng, &x, &labels);
  const LdaModel model = FitLda(x, labels, 3);
  const Matrix embedded = model.embedding.Transform(x);
  const Vector mean = ColumnMeans(embedded);
  for (int j = 0; j < mean.size(); ++j) EXPECT_NEAR(mean[j], 0.0, 1e-9);
}

TEST(LdaTest, SingularCaseMoreFeaturesThanSamples) {
  // n > m: S_w singular; the SVD route must still work (the paper's
  // motivating case). With linearly independent samples, training classes
  // collapse to points (Corollary 3 discussion).
  Rng rng(6);
  const int per_class = 4;
  const int dim = 50;
  Matrix x(3 * per_class, dim);
  std::vector<int> labels;
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < dim; ++j) {
        x(row, j) = 2.0 * k + rng.NextGaussian();
      }
      labels.push_back(k);
    }
  }
  const LdaModel model = FitLda(x, labels, 3);
  ASSERT_TRUE(model.converged);
  EXPECT_EQ(model.data_rank, 3 * per_class - 1);
  const Matrix embedded = model.embedding.Transform(x);
  // Same-class training samples embed to (nearly) the same point.
  for (int i = 1; i < per_class; ++i) {
    Vector diff = embedded.Row(i);
    Axpy(-1.0, embedded.Row(0), &diff);
    EXPECT_LT(Norm2(diff), 1e-6) << "sample " << i;
  }
}

TEST(LdaTest, PerfectTrainingAccuracyWhenSamplesIndependent) {
  Rng rng(7);
  const int dim = 60;
  Matrix x(9, dim);
  std::vector<int> labels;
  for (int i = 0; i < 9; ++i) {
    for (int j = 0; j < dim; ++j) {
      x(i, j) = (i / 3) * 1.5 + rng.NextGaussian();
    }
    labels.push_back(i / 3);
  }
  const LdaModel model = FitLda(x, labels, 3);
  ASSERT_TRUE(model.converged);
  const Matrix embedded = model.embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, 3);
  EXPECT_EQ(ErrorRate(classifier.Predict(embedded), labels), 0.0);
}

TEST(LdaTest, GolubReinschBackendAgreesWithCrossProduct) {
  Rng rng(20);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(25, 12, 4.0, &rng, &x, &labels);
  LdaOptions accurate;
  accurate.svd_method = SvdMethod::kGolubReinsch;
  const LdaModel a = FitLda(x, labels, 3, accurate);
  const LdaModel b = FitLda(x, labels, 3);
  ASSERT_TRUE(a.converged && b.converged);
  EXPECT_EQ(a.num_directions, b.num_directions);
  // Embeddings agree up to per-direction sign.
  const Matrix ea = a.embedding.Transform(x);
  const Matrix eb = b.embedding.Transform(x);
  for (int d = 0; d < a.num_directions; ++d) {
    const Vector col_a = ea.Col(d);
    Vector col_b = eb.Col(d);
    if (Dot(col_a, col_b) < 0) Scale(-1.0, &col_b);
    EXPECT_LT(MaxAbsDiff(col_a, col_b), 1e-6) << "direction " << d;
  }
}

TEST(LdaDeathTest, SingleClassAborts) {
  Matrix x(4, 2);
  EXPECT_DEATH(FitLda(x, {0, 0, 0, 0}, 1), "two classes");
}

TEST(LdaDeathTest, LabelCountMismatchAborts) {
  Matrix x(4, 2);
  EXPECT_DEATH(FitLda(x, {0, 1}, 2), "label count");
}

TEST(LdaDeathTest, EmptyClassAborts) {
  Matrix x(4, 2);
  EXPECT_DEATH(FitLda(x, {0, 0, 0, 0}, 2), "no samples");
}

// Property sweep: error on separable blobs stays low across dimensions.
class LdaDimensionTest : public ::testing::TestWithParam<int> {};

TEST_P(LdaDimensionTest, SeparableBlobsClassified) {
  Rng rng(800 + GetParam());
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(25, GetParam(), 6.0, &rng, &x, &labels);
  const LdaModel model = FitLda(x, labels, 3);
  ASSERT_TRUE(model.converged);
  const Matrix embedded = model.embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, 3);
  // Higher dimensions overfit more with only 75 samples; allow extra slack.
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), labels),
            GetParam() >= 50 ? 0.2 : 0.1);
}

INSTANTIATE_TEST_SUITE_P(Dimensions, LdaDimensionTest,
                         ::testing::Values(2, 3, 5, 10, 20, 50, 100));

}  // namespace
}  // namespace srda
