// Tests for SRDA, including the paper's Theorem 2 / Corollary 3 equivalence
// with LDA as alpha decreases to zero.

#include <cmath>

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/lda.h"
#include "core/responses.h"
#include "core/srda.h"
#include "linalg/gram_schmidt.h"
#include "matrix/blas.h"
#include "sparse/sparse_matrix.h"

namespace srda {
namespace {

void MakeBlobs(int num_classes, int per_class, int dim, double separation,
               Rng* rng, Matrix* x, std::vector<int>* labels) {
  *x = Matrix(num_classes * per_class, dim);
  labels->clear();
  Matrix centers(num_classes, dim);
  for (int k = 0; k < num_classes; ++k) {
    for (int j = 0; j < dim; ++j) {
      centers(k, j) = rng->NextGaussian() * separation;
    }
  }
  for (int k = 0; k < num_classes; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < dim; ++j) {
        (*x)(row, j) = centers(k, j) + rng->NextGaussian();
      }
      labels->push_back(k);
    }
  }
}

// Largest principal angle proxy: residual of projecting each column of `b`
// onto the column span of `a` (both orthonormalized first).
double SubspaceResidual(Matrix a, Matrix b) {
  ModifiedGramSchmidt(&a);
  ModifiedGramSchmidt(&b);
  double worst = 0.0;
  for (int j = 0; j < b.cols(); ++j) {
    Vector column = b.Col(j);
    Vector residual = column;
    for (int k = 0; k < a.cols(); ++k) {
      const Vector basis = a.Col(k);
      Axpy(-Dot(basis, column), basis, &residual);
    }
    worst = std::max(worst, Norm2(residual));
  }
  return worst;
}

TEST(SrdaTest, ProducesCMinusOneDirections) {
  Rng rng(1);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(4, 15, 10, 4.0, &rng, &x, &labels);
  const SrdaModel model = FitSrda(x, labels, 4);
  ASSERT_TRUE(model.converged);
  EXPECT_EQ(model.num_responses, 3);
  EXPECT_EQ(model.embedding.output_dim(), 3);
}

TEST(SrdaTest, SeparatesBlobsNormalEquations) {
  Rng rng(2);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 30, 8, 5.0, &rng, &x, &labels);
  const SrdaModel model = FitSrda(x, labels, 3);
  ASSERT_TRUE(model.converged);
  const Matrix embedded = model.embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, 3);
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), labels), 0.05);
}

TEST(SrdaTest, SeparatesBlobsLsqr) {
  Rng rng(3);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 30, 8, 5.0, &rng, &x, &labels);
  SrdaOptions options;
  options.solver = SrdaSolver::kLsqr;
  const SrdaModel model = FitSrda(x, labels, 3, options);
  ASSERT_TRUE(model.converged);
  EXPECT_GT(model.total_lsqr_iterations, 0);
  const Matrix embedded = model.embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, 3);
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), labels), 0.05);
}

TEST(SrdaTest, NormalEquationsAndLsqrAgree) {
  Rng rng(4);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 20, 12, 4.0, &rng, &x, &labels);
  SrdaOptions normal_options;
  normal_options.alpha = 0.01;
  SrdaOptions lsqr_options = normal_options;
  lsqr_options.solver = SrdaSolver::kLsqr;
  lsqr_options.lsqr_iterations = 300;
  lsqr_options.lsqr_atol = 1e-13;
  lsqr_options.lsqr_btol = 1e-13;
  const SrdaModel a = FitSrda(x, labels, 3, normal_options);
  const SrdaModel b = FitSrda(x, labels, 3, lsqr_options);
  // Both solvers exclude the bias from the ridge penalty (implicitly
  // centered data, b = -mean^T a), so they target the same optimum and
  // agree to solver tolerance.
  const Matrix embedded_a = a.embedding.Transform(x);
  const Matrix embedded_b = b.embedding.Transform(x);
  EXPECT_LT(MaxAbsDiff(embedded_a, embedded_b), 1e-6);
}

TEST(SrdaTest, NormalEquationsAndLsqrAgreeAtModerateAlpha) {
  // Regression test for the bias fix: the old LSQR formulation appended a
  // ones column and damped the bias coefficient along with the projection,
  // pulling the bias toward zero for any alpha > 0. With the bias excluded
  // from damping, projection AND bias must match the normal-equations
  // solution tightly.
  Rng rng(11);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(4, 25, 10, 4.0, &rng, &x, &labels);
  // Shift the data away from the origin so a damped bias would be visibly
  // wrong (the optimal bias is far from zero).
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) x(i, j) += 7.0;
  }
  SrdaOptions normal_options;
  normal_options.alpha = 1.0;  // Moderate ridge: the paper's default.
  SrdaOptions lsqr_options = normal_options;
  lsqr_options.solver = SrdaSolver::kLsqr;
  lsqr_options.lsqr_iterations = 400;
  lsqr_options.lsqr_atol = 1e-14;
  lsqr_options.lsqr_btol = 1e-14;
  const SrdaModel a = FitSrda(x, labels, 4, normal_options);
  const SrdaModel b = FitSrda(x, labels, 4, lsqr_options);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_LT(MaxAbsDiff(a.embedding.projection(), b.embedding.projection()),
            1e-8);
  EXPECT_LT(MaxAbsDiff(a.embedding.bias(), b.embedding.bias()), 1e-8);
}

TEST(SrdaTest, DualPathSolvesSameNormalEquations) {
  // n > m triggers the dual (m x m) system; the result must still satisfy
  // the primal ridge normal equations (Xc^T Xc + alpha I) A = Xc^T Y.
  Rng rng(5);
  const int m = 12;
  const int n = 30;  // n > m -> dual path
  Matrix x(m, n);
  std::vector<int> labels;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) x(i, j) = rng.NextGaussian();
    labels.push_back(i % 3);
  }
  SrdaOptions options;
  options.alpha = 0.5;
  const SrdaModel model = FitSrda(x, labels, 3, options);
  ASSERT_TRUE(model.converged);

  Matrix centered = x;
  SubtractRowVector(ColumnMeans(x), &centered);
  const Matrix& a = model.embedding.projection();
  Matrix lhs = MultiplyTransposedA(centered, Multiply(centered, a));
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i < n; ++i) lhs(i, j) += options.alpha * a(i, j);
  }
  const Matrix responses = GenerateSrdaResponses(labels, 3);
  const Matrix rhs = MultiplyTransposedA(centered, responses);
  EXPECT_LT(MaxAbsDiff(lhs, rhs), 1e-9);
}

TEST(SrdaTest, SparseAndDenseLsqrAgree) {
  Rng rng(6);
  const int m = 40;
  const int n = 25;
  SparseMatrixBuilder builder(m, n);
  std::vector<int> labels;
  for (int i = 0; i < m; ++i) {
    const int k = i % 4;
    labels.push_back(k);
    // Class-dependent sparse pattern.
    for (int j = 0; j < n; ++j) {
      if (rng.NextDouble() < 0.2) {
        builder.Add(i, j, rng.NextGaussian() + (j % 4 == k ? 2.0 : 0.0));
      }
    }
  }
  const SparseMatrix sparse = std::move(builder).Build();
  const Matrix dense = sparse.ToDense();

  SrdaOptions options;
  options.solver = SrdaSolver::kLsqr;
  options.lsqr_iterations = 100;
  const SrdaModel sparse_model = FitSrda(sparse, labels, 4, options);
  const SrdaModel dense_model = FitSrda(dense, labels, 4, options);
  ASSERT_TRUE(sparse_model.converged);
  EXPECT_LT(MaxAbsDiff(sparse_model.embedding.projection(),
                       dense_model.embedding.projection()),
            1e-9);
  EXPECT_LT(MaxAbsDiff(sparse_model.embedding.bias(),
                       dense_model.embedding.bias()),
            1e-9);
}

TEST(SrdaTest, Theorem2EquivalenceWithLdaAsAlphaVanishes) {
  // Corollary 3: with linearly independent samples (n > m), the SRDA
  // projective functions span the LDA solution space as alpha -> 0.
  Rng rng(7);
  const int per_class = 5;
  const int c = 3;
  const int n = 80;  // n >> m = 15 -> samples linearly independent a.s.
  Matrix x(c * per_class, n);
  std::vector<int> labels;
  for (int k = 0; k < c; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < n; ++j) {
        x(row, j) = 1.5 * k + rng.NextGaussian();
      }
      labels.push_back(k);
    }
  }
  const LdaModel lda = FitLda(x, labels, c);
  ASSERT_TRUE(lda.converged);
  SrdaOptions options;
  options.alpha = 1e-9;
  const SrdaModel srda_model = FitSrda(x, labels, c, options);
  ASSERT_TRUE(srda_model.converged);
  EXPECT_LT(SubspaceResidual(lda.embedding.projection(),
                             srda_model.embedding.projection()),
            1e-3);
  EXPECT_LT(SubspaceResidual(srda_model.embedding.projection(),
                             lda.embedding.projection()),
            1e-3);
}

TEST(SrdaTest, TrainingClassesCollapseWhenSamplesIndependent) {
  // Corollary 3 consequence: same-class training points map to the same
  // embedded point as alpha -> 0 when samples are linearly independent.
  Rng rng(8);
  const int n = 60;
  Matrix x(9, n);
  std::vector<int> labels;
  for (int i = 0; i < 9; ++i) {
    for (int j = 0; j < n; ++j) x(i, j) = rng.NextGaussian();
    labels.push_back(i / 3);
  }
  SrdaOptions options;
  options.alpha = 1e-10;
  const SrdaModel model = FitSrda(x, labels, 3, options);
  ASSERT_TRUE(model.converged);
  const Matrix embedded = model.embedding.Transform(x);
  for (int k = 0; k < 3; ++k) {
    for (int i = 1; i < 3; ++i) {
      Vector diff = embedded.Row(3 * k + i);
      Axpy(-1.0, embedded.Row(3 * k), &diff);
      EXPECT_LT(Norm2(diff), 1e-4 * (1.0 + Norm2(embedded.Row(3 * k))));
    }
  }
}

TEST(SrdaTest, RegularizationShrinksProjection) {
  Rng rng(9);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 10, 20, 3.0, &rng, &x, &labels);
  SrdaOptions weak;
  weak.alpha = 1e-6;
  SrdaOptions strong;
  strong.alpha = 100.0;
  const SrdaModel weak_model = FitSrda(x, labels, 3, weak);
  const SrdaModel strong_model = FitSrda(x, labels, 3, strong);
  double weak_norm = 0.0;
  double strong_norm = 0.0;
  for (int j = 0; j < 2; ++j) {
    weak_norm += Norm2(weak_model.embedding.projection().Col(j));
    strong_norm += Norm2(strong_model.embedding.projection().Col(j));
  }
  EXPECT_LT(strong_norm, weak_norm);
}

TEST(SrdaTest, AlphaZeroAllowedWhenFullRank) {
  Rng rng(10);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 30, 5, 4.0, &rng, &x, &labels);  // m >> n, full rank
  SrdaOptions options;
  options.alpha = 0.0;
  const SrdaModel model = FitSrda(x, labels, 3, options);
  EXPECT_TRUE(model.converged);
}

TEST(SrdaDeathTest, NegativeAlphaAborts) {
  Matrix x(4, 2);
  SrdaOptions options;
  options.alpha = -1.0;
  EXPECT_DEATH(FitSrda(x, {0, 0, 1, 1}, 2, options), "non-negative");
}

TEST(SrdaDeathTest, LabelMismatchAborts) {
  Matrix x(4, 2);
  EXPECT_DEATH(FitSrda(x, {0, 1}, 2), "label count");
}

// Property sweep: SRDA solves the ridge normal equations on centered data
// (primal path), verified directly.
class SrdaNormalEquationTest : public ::testing::TestWithParam<int> {};

TEST_P(SrdaNormalEquationTest, ResidualOfNormalEquationsSmall) {
  Rng rng(1000 + GetParam());
  const int c = 2 + GetParam() % 3;
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(c, 12, 6 + GetParam(), 3.0, &rng, &x, &labels);
  SrdaOptions options;
  options.alpha = 0.25 * (1 + GetParam() % 4);
  const SrdaModel model = FitSrda(x, labels, c, options);
  ASSERT_TRUE(model.converged);

  // Verify (Xc^T Xc + alpha I) A == Xc^T Y by recomputing both sides.
  Matrix centered = x;
  SubtractRowVector(ColumnMeans(x), &centered);
  const Matrix& a = model.embedding.projection();
  Matrix lhs = MultiplyTransposedA(centered, Multiply(centered, a));
  for (int j = 0; j < a.cols(); ++j) {
    for (int i = 0; i < a.rows(); ++i) lhs(i, j) += options.alpha * a(i, j);
  }
  const Matrix responses = GenerateSrdaResponses(labels, c);
  const Matrix rhs = MultiplyTransposedA(centered, responses);
  EXPECT_LT(MaxAbsDiff(lhs, rhs), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SrdaNormalEquationTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace srda
