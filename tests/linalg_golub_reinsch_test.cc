// Tests for the Golub-Reinsch SVD and its accuracy advantage over the
// cross-product method.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/golub_reinsch_svd.h"
#include "linalg/svd.h"
#include "matrix/blas.h"

namespace srda {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

Matrix Reconstruct(const SvdResult& svd) {
  Matrix us = svd.u;
  for (int k = 0; k < svd.rank; ++k) {
    for (int i = 0; i < us.rows(); ++i) us(i, k) *= svd.singular_values[k];
  }
  return MultiplyTransposedB(us, svd.v);
}

TEST(GolubReinschSvdTest, TallMatrixReconstructs) {
  Rng rng(1);
  const Matrix a = RandomMatrix(12, 5, &rng);
  const SvdResult svd = ThinSvdGolubReinsch(a);
  ASSERT_TRUE(svd.converged);
  EXPECT_EQ(svd.rank, 5);
  EXPECT_LT(MaxAbsDiff(Reconstruct(svd), a), 1e-12);
}

TEST(GolubReinschSvdTest, WideMatrixReconstructs) {
  Rng rng(2);
  const Matrix a = RandomMatrix(4, 11, &rng);
  const SvdResult svd = ThinSvdGolubReinsch(a);
  ASSERT_TRUE(svd.converged);
  EXPECT_EQ(svd.rank, 4);
  EXPECT_LT(MaxAbsDiff(Reconstruct(svd), a), 1e-12);
}

TEST(GolubReinschSvdTest, FactorsOrthonormal) {
  Rng rng(3);
  const Matrix a = RandomMatrix(15, 7, &rng);
  const SvdResult svd = ThinSvdGolubReinsch(a);
  ASSERT_TRUE(svd.converged);
  EXPECT_LT(MaxAbsDiff(Gram(svd.u), Matrix::Identity(svd.rank)), 1e-12);
  EXPECT_LT(MaxAbsDiff(Gram(svd.v), Matrix::Identity(svd.rank)), 1e-12);
}

TEST(GolubReinschSvdTest, AgreesWithCrossProductOnWellConditioned) {
  Rng rng(4);
  const Matrix a = RandomMatrix(20, 8, &rng);
  const SvdResult accurate = ThinSvdGolubReinsch(a);
  const SvdResult fast = ThinSvd(a);
  ASSERT_EQ(accurate.rank, fast.rank);
  for (int k = 0; k < accurate.rank; ++k) {
    EXPECT_NEAR(accurate.singular_values[k], fast.singular_values[k],
                1e-7 * accurate.singular_values[0])
        << "singular value " << k;
  }
}

TEST(GolubReinschSvdTest, ResolvesTinySingularValues) {
  // A matrix with singular values {1, 1e-7}: the cross-product method can't
  // distinguish 1e-7 from noise (its floor is ~sqrt(eps)); Golub-Reinsch
  // recovers it to ~eps relative accuracy.
  Matrix a(4, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1e-7;
  const SvdResult svd = ThinSvdGolubReinsch(a, 1e-12);
  ASSERT_TRUE(svd.converged);
  ASSERT_EQ(svd.rank, 2);
  EXPECT_NEAR(svd.singular_values[0], 1.0, 1e-14);
  EXPECT_NEAR(svd.singular_values[1], 1e-7, 1e-14);
}

TEST(GolubReinschSvdTest, ExactRankDetectionAtTightTolerance) {
  // Rank-2 matrix: Golub-Reinsch detects rank 2 even at tolerance 1e-12,
  // where the cross-product method over-reports (documented limitation).
  Rng rng(5);
  const Matrix left = RandomMatrix(9, 2, &rng);
  const Matrix right = RandomMatrix(2, 6, &rng);
  const Matrix a = Multiply(left, right);
  const SvdResult svd = ThinSvdGolubReinsch(a, 1e-12);
  ASSERT_TRUE(svd.converged);
  EXPECT_EQ(svd.rank, 2);
}

TEST(GolubReinschSvdTest, ZeroColumnHandled) {
  Matrix a(5, 3);
  a(0, 0) = 2.0;
  a(1, 2) = 3.0;  // Middle column all zero.
  const SvdResult svd = ThinSvdGolubReinsch(a, 1e-12);
  ASSERT_TRUE(svd.converged);
  EXPECT_EQ(svd.rank, 2);
  EXPECT_LT(MaxAbsDiff(Reconstruct(svd), a), 1e-13);
}

TEST(GolubReinschSvdTest, SingularValuesNonNegativeDescending) {
  Rng rng(6);
  const Matrix a = RandomMatrix(10, 10, &rng);
  const SvdResult svd = ThinSvdGolubReinsch(a);
  for (int k = 0; k < svd.rank; ++k) {
    EXPECT_GT(svd.singular_values[k], 0.0);
    if (k > 0) {
      EXPECT_LE(svd.singular_values[k], svd.singular_values[k - 1]);
    }
  }
}

TEST(GolubReinschSvdDeathTest, EmptyMatrixAborts) {
  EXPECT_DEATH(ThinSvdGolubReinsch(Matrix(0, 2)), "empty");
}

// Property sweep over shapes, mirroring the cross-product suite but with
// tighter tolerances (backward stability).
struct GrShape {
  int rows;
  int cols;
};

class GolubReinschShapeTest : public ::testing::TestWithParam<GrShape> {};

TEST_P(GolubReinschShapeTest, ReconstructsAndOrthogonal) {
  Rng rng(400 + GetParam().rows * 31 + GetParam().cols);
  const Matrix a = RandomMatrix(GetParam().rows, GetParam().cols, &rng);
  const SvdResult svd = ThinSvdGolubReinsch(a);
  ASSERT_TRUE(svd.converged);
  EXPECT_LT(MaxAbsDiff(Reconstruct(svd), a), 1e-11);
  EXPECT_LT(MaxAbsDiff(Gram(svd.u), Matrix::Identity(svd.rank)), 1e-11);
  EXPECT_LT(MaxAbsDiff(Gram(svd.v), Matrix::Identity(svd.rank)), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GolubReinschShapeTest,
    ::testing::Values(GrShape{1, 1}, GrShape{1, 8}, GrShape{8, 1},
                      GrShape{5, 5}, GrShape{20, 3}, GrShape{3, 20},
                      GrShape{16, 16}, GrShape{40, 17}, GrShape{17, 40},
                      GrShape{64, 64}));

}  // namespace
}  // namespace srda
