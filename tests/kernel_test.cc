// Tests for the kernel module and Kernel SRDA.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/kda.h"
#include "core/ksrda.h"
#include "core/srda.h"
#include "kernel/kernel.h"
#include "matrix/blas.h"

namespace srda {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

TEST(KernelTest, LinearKernelIsDotProduct) {
  LinearKernel kernel;
  const double x[] = {1.0, 2.0, 3.0};
  const double y[] = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(kernel.Evaluate(x, y, 3), 32.0);
}

TEST(KernelTest, RbfKernelProperties) {
  RbfKernel kernel(0.5);
  const double x[] = {1.0, 2.0};
  const double y[] = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(kernel.Evaluate(x, x, 2), 1.0);  // k(x, x) = 1.
  const double z[] = {3.0, 4.0};
  const double value = kernel.Evaluate(x, z, 2);
  EXPECT_GT(value, 0.0);
  EXPECT_LT(value, 1.0);
  EXPECT_DOUBLE_EQ(value, std::exp(-0.5 * 8.0));
  EXPECT_DOUBLE_EQ(kernel.Evaluate(y, z, 2), value);  // Symmetry.
}

TEST(KernelDeathTest, NonPositiveGammaAborts) {
  EXPECT_DEATH(RbfKernel(0.0), "positive");
}

TEST(KernelTest, PolynomialKernel) {
  PolynomialKernel kernel(2, 1.0);
  const double x[] = {1.0, 1.0};
  const double y[] = {2.0, 0.0};
  // (x.y + 1)^2 = (2 + 1)^2 = 9.
  EXPECT_DOUBLE_EQ(kernel.Evaluate(x, y, 2), 9.0);
}

TEST(KernelTest, KernelMatrixSymmetricPsd) {
  Rng rng(1);
  const Matrix x = RandomMatrix(15, 4, &rng);
  RbfKernel kernel(0.3);
  const Matrix k = KernelMatrix(kernel, x);
  EXPECT_LT(MaxAbsDiff(k, k.Transposed()), 1e-15);
  // PSD: v^T K v >= 0 for random v.
  for (int trial = 0; trial < 5; ++trial) {
    Vector v(15);
    for (int i = 0; i < 15; ++i) v[i] = rng.NextGaussian();
    EXPECT_GE(Dot(v, Multiply(k, v)), -1e-9);
  }
}

TEST(KernelTest, CrossMatrixConsistentWithSquare) {
  Rng rng(2);
  const Matrix x = RandomMatrix(8, 3, &rng);
  LinearKernel kernel;
  const Matrix square = KernelMatrix(kernel, x);
  const Matrix cross = KernelCrossMatrix(kernel, x, x);
  EXPECT_LT(MaxAbsDiff(square, cross), 1e-14);
}

TEST(KernelTest, MedianHeuristicPositive) {
  Rng rng(3);
  const Matrix x = RandomMatrix(30, 5, &rng);
  const double gamma = RbfGammaMedianHeuristic(x);
  EXPECT_GT(gamma, 0.0);
  // Median squared distance in 5-d standard normal data is around 2*5 = 10,
  // so gamma should be around 1/20.
  EXPECT_GT(gamma, 0.01);
  EXPECT_LT(gamma, 0.5);
}

TEST(KsrdaTest, SeparatesLinearlySeparableBlobs) {
  Rng rng(4);
  const int per_class = 25;
  Matrix x(3 * per_class, 5);
  std::vector<int> labels;
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < 5; ++j) {
        x(row, j) = 4.0 * (j == k) + rng.NextGaussian();
      }
      labels.push_back(k);
    }
  }
  const KsrdaModel model =
      FitKsrda(x, labels, 3, std::make_shared<RbfKernel>(0.1));
  ASSERT_TRUE(model.converged());
  EXPECT_EQ(model.output_dim(), 2);
  const Matrix embedded = model.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, 3);
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), labels), 0.05);
}

TEST(KsrdaTest, SolvesNonlinearProblemLinearSrdaCannot) {
  // Concentric rings: no linear projection separates them, an RBF kernel
  // does. This is the motivating case for the kernel extension [14].
  Rng rng(5);
  const int per_class = 60;
  Matrix x(2 * per_class, 2);
  std::vector<int> labels;
  for (int k = 0; k < 2; ++k) {
    const double radius = k == 0 ? 1.0 : 4.0;
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      const double angle = rng.NextUniform(0.0, 2.0 * M_PI);
      x(row, 0) = radius * std::cos(angle) + 0.15 * rng.NextGaussian();
      x(row, 1) = radius * std::sin(angle) + 0.15 * rng.NextGaussian();
      labels.push_back(k);
    }
  }

  // Linear SRDA: near-chance.
  const SrdaModel linear = FitSrda(x, labels, 2);
  CentroidClassifier linear_classifier;
  linear_classifier.Fit(linear.embedding.Transform(x), labels, 2);
  const double linear_error =
      ErrorRate(linear_classifier.Predict(linear.embedding.Transform(x)),
                labels);
  EXPECT_GT(linear_error, 0.3);

  // Kernel SRDA: near-perfect.
  const KsrdaModel kernel_model =
      FitKsrda(x, labels, 2, std::make_shared<RbfKernel>(0.5));
  ASSERT_TRUE(kernel_model.converged());
  CentroidClassifier kernel_classifier;
  kernel_classifier.Fit(kernel_model.Transform(x), labels, 2);
  const double kernel_error =
      ErrorRate(kernel_classifier.Predict(kernel_model.Transform(x)), labels);
  EXPECT_LT(kernel_error, 0.05);
}

TEST(KsrdaTest, LinearKernelMatchesLinearSrdaAccuracy) {
  Rng rng(6);
  const int per_class = 30;
  Matrix x(3 * per_class, 6);
  std::vector<int> labels;
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < 6; ++j) {
        x(row, j) = 3.0 * (j == k) + rng.NextGaussian();
      }
      labels.push_back(k);
    }
  }
  const KsrdaModel kernel_model =
      FitKsrda(x, labels, 3, std::make_shared<LinearKernel>());
  const SrdaModel linear = FitSrda(x, labels, 3);
  CentroidClassifier a;
  a.Fit(kernel_model.Transform(x), labels, 3);
  CentroidClassifier b;
  b.Fit(linear.embedding.Transform(x), labels, 3);
  const double kernel_error =
      ErrorRate(a.Predict(kernel_model.Transform(x)), labels);
  const double linear_error =
      ErrorRate(b.Predict(linear.embedding.Transform(x)), labels);
  EXPECT_NEAR(kernel_error, linear_error, 0.05);
}

TEST(KsrdaTest, GeneralizesToHeldOutPoints) {
  Rng rng(7);
  Matrix train(40, 3);
  Matrix test(20, 3);
  std::vector<int> train_labels;
  std::vector<int> test_labels;
  for (int i = 0; i < 40; ++i) {
    const int k = i % 2;
    train_labels.push_back(k);
    for (int j = 0; j < 3; ++j) {
      train(i, j) = 3.0 * k + rng.NextGaussian();
    }
  }
  for (int i = 0; i < 20; ++i) {
    const int k = i % 2;
    test_labels.push_back(k);
    for (int j = 0; j < 3; ++j) test(i, j) = 3.0 * k + rng.NextGaussian();
  }
  const KsrdaModel model =
      FitKsrda(train, train_labels, 2, std::make_shared<RbfKernel>(0.2));
  CentroidClassifier classifier;
  classifier.Fit(model.Transform(train), train_labels, 2);
  EXPECT_LT(ErrorRate(classifier.Predict(model.Transform(test)), test_labels),
            0.15);
}

TEST(KdaTest, MatchesKsrdaOnRings) {
  // The SR-KDA claim from the paper's reference [14]: the regression-based
  // kernel method matches exact KDA's accuracy.
  Rng rng(8);
  const int per_class = 50;
  Matrix x(2 * per_class, 2);
  std::vector<int> labels;
  for (int k = 0; k < 2; ++k) {
    const double radius = k == 0 ? 1.0 : 3.5;
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      const double angle = rng.NextUniform(0.0, 2.0 * M_PI);
      x(row, 0) = radius * std::cos(angle) + 0.2 * rng.NextGaussian();
      x(row, 1) = radius * std::sin(angle) + 0.2 * rng.NextGaussian();
      labels.push_back(k);
    }
  }
  auto kernel = std::make_shared<RbfKernel>(0.5);
  const KdaModel kda = FitKda(x, labels, 2, kernel);
  const KsrdaModel ksrda_model = FitKsrda(x, labels, 2, kernel);
  ASSERT_TRUE(kda.converged());
  ASSERT_TRUE(ksrda_model.converged());
  CentroidClassifier kda_classifier;
  kda_classifier.Fit(kda.Transform(x), labels, 2);
  CentroidClassifier ksrda_classifier;
  ksrda_classifier.Fit(ksrda_model.Transform(x), labels, 2);
  const double kda_error = ErrorRate(kda_classifier.Predict(kda.Transform(x)),
                                     labels);
  const double ksrda_error = ErrorRate(
      ksrda_classifier.Predict(ksrda_model.Transform(x)), labels);
  EXPECT_LT(kda_error, 0.05);
  EXPECT_NEAR(kda_error, ksrda_error, 0.05);
}

TEST(KdaTest, SeparatesBlobsWithLinearKernel) {
  Rng rng(9);
  const int per_class = 20;
  Matrix x(3 * per_class, 4);
  std::vector<int> labels;
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < 4; ++j) {
        x(row, j) = 3.5 * (j == k) + rng.NextGaussian();
      }
      labels.push_back(k);
    }
  }
  const KdaModel model =
      FitKda(x, labels, 3, std::make_shared<LinearKernel>());
  ASSERT_TRUE(model.converged());
  EXPECT_EQ(model.output_dim(), 2);
  CentroidClassifier classifier;
  classifier.Fit(model.Transform(x), labels, 3);
  EXPECT_LT(ErrorRate(classifier.Predict(model.Transform(x)), labels), 0.05);
}

TEST(KdaDeathTest, BadOptionsAbort) {
  Matrix x(4, 2);
  EXPECT_DEATH(FitKda(x, {0, 0, 1, 1}, 2, nullptr), "null kernel");
  KdaOptions options;
  options.alpha = 0.0;
  EXPECT_DEATH(
      FitKda(x, {0, 0, 1, 1}, 2, std::make_shared<LinearKernel>(), options),
      "alpha");
}

TEST(KsrdaDeathTest, NullKernelAborts) {
  Matrix x(4, 2);
  EXPECT_DEATH(FitKsrda(x, {0, 0, 1, 1}, 2, nullptr), "null kernel");
}

TEST(KsrdaDeathTest, ZeroAlphaAborts) {
  Matrix x(4, 2);
  KsrdaOptions options;
  options.alpha = 0.0;
  EXPECT_DEATH(
      FitKsrda(x, {0, 0, 1, 1}, 2, std::make_shared<LinearKernel>(), options),
      "alpha");
}

TEST(KsrdaDeathTest, TransformBeforeFitAborts) {
  KsrdaModel model;
  EXPECT_DEATH(model.Transform(Matrix(1, 2)), "untrained");
}

}  // namespace
}  // namespace srda
