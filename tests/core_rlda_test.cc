// Tests for regularized LDA.

#include <cmath>

#include <gtest/gtest.h>

#include "classify/classifiers.h"
#include "common/rng.h"
#include "core/lda.h"
#include "core/rlda.h"
#include "matrix/blas.h"

namespace srda {
namespace {

void MakeBlobs(int num_classes, int per_class, int dim, double separation,
               Rng* rng, Matrix* x, std::vector<int>* labels) {
  *x = Matrix(num_classes * per_class, dim);
  labels->clear();
  Matrix centers(num_classes, dim);
  for (int k = 0; k < num_classes; ++k) {
    for (int j = 0; j < dim; ++j) {
      centers(k, j) = rng->NextGaussian() * separation;
    }
  }
  for (int k = 0; k < num_classes; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const int row = k * per_class + i;
      for (int j = 0; j < dim; ++j) {
        (*x)(row, j) = centers(k, j) + rng->NextGaussian();
      }
      labels->push_back(k);
    }
  }
}

TEST(RldaTest, ProducesAtMostCMinusOneDirections) {
  Rng rng(1);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(4, 15, 10, 4.0, &rng, &x, &labels);
  const RldaModel model = FitRlda(x, labels, 4);
  ASSERT_TRUE(model.converged);
  EXPECT_EQ(model.num_directions, 3);
}

TEST(RldaTest, SeparatesBlobs) {
  Rng rng(2);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 30, 8, 5.0, &rng, &x, &labels);
  const RldaModel model = FitRlda(x, labels, 3);
  ASSERT_TRUE(model.converged);
  const Matrix embedded = model.embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, 3);
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), labels), 0.05);
}

TEST(RldaTest, WorksWhenScatterSingular) {
  // n > m: S_t singular; LDA needs SVD preprocessing, RLDA just adds alpha.
  Rng rng(3);
  const int n = 40;
  Matrix x(12, n);
  std::vector<int> labels;
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < n; ++j) x(i, j) = (i / 4) * 2.0 + rng.NextGaussian();
    labels.push_back(i / 4);
  }
  const RldaModel model = FitRlda(x, labels, 3);
  ASSERT_TRUE(model.converged);
  const Matrix embedded = model.embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, 3);
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), labels), 0.2);
}

TEST(RldaTest, GeneralizedEigenNormalization) {
  // Directions satisfy a^T (S_t + alpha I) a = lambda with lambda in (0, 1]:
  // whitened directions carry a sqrt(lambda) length.
  Rng rng(4);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 25, 6, 3.0, &rng, &x, &labels);
  RldaOptions options;
  options.alpha = 2.0;
  const RldaModel model = FitRlda(x, labels, 3, options);
  ASSERT_TRUE(model.converged);
  Matrix centered = x;
  SubtractRowVector(ColumnMeans(x), &centered);
  Matrix st = Gram(centered);
  AddDiagonal(options.alpha, &st);
  double previous = 1.0 + 1e-9;
  for (int d = 0; d < model.num_directions; ++d) {
    const Vector a = model.embedding.projection().Col(d);
    const double lambda = Dot(a, Multiply(st, a));
    EXPECT_GT(lambda, 0.0) << "direction " << d;
    EXPECT_LE(lambda, 1.0 + 1e-9) << "direction " << d;
    // Directions come ordered by decreasing eigenvalue.
    EXPECT_LE(lambda, previous + 1e-9) << "direction " << d;
    previous = lambda;
  }
}

TEST(RldaTest, GeneralizedEigenEquationHolds) {
  // S_b a = lambda (S_t + alpha I) a for some lambda in (0, 1].
  Rng rng(5);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 20, 5, 4.0, &rng, &x, &labels);
  RldaOptions options;
  options.alpha = 1.0;
  const RldaModel model = FitRlda(x, labels, 3, options);
  ASSERT_TRUE(model.converged);

  Matrix centered = x;
  SubtractRowVector(ColumnMeans(x), &centered);
  Matrix st = Gram(centered);
  AddDiagonal(options.alpha, &st);
  // S_b from class structure.
  const std::vector<int> counts = {20, 20, 20};
  Matrix hd(3, 5);
  for (int i = 0; i < 60; ++i) {
    for (int j = 0; j < 5; ++j) hd(labels[i], j) += centered(i, j);
  }
  for (int k = 0; k < 3; ++k) {
    for (int j = 0; j < 5; ++j) hd(k, j) /= std::sqrt(20.0);
  }
  const Matrix sb = Gram(hd);

  for (int d = 0; d < model.num_directions; ++d) {
    const Vector a = model.embedding.projection().Col(d);
    const Vector sb_a = Multiply(sb, a);
    const Vector st_a = Multiply(st, a);
    // Scaling-independent Rayleigh quotient.
    const double lambda = Dot(a, sb_a) / Dot(a, st_a);
    EXPECT_GT(lambda, 0.0);
    EXPECT_LE(lambda, 1.0 + 1e-9);
    Vector residual = sb_a;
    Axpy(-lambda, st_a, &residual);
    EXPECT_LT(Norm2(residual), 1e-7 * (1.0 + Norm2(sb_a))) << "direction " << d;
  }
}

TEST(RldaTest, LargeAlphaStillClassifiesSeparableData) {
  Rng rng(6);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 30, 6, 8.0, &rng, &x, &labels);
  RldaOptions options;
  options.alpha = 1e4;
  const RldaModel model = FitRlda(x, labels, 3, options);
  ASSERT_TRUE(model.converged);
  const Matrix embedded = model.embedding.Transform(x);
  CentroidClassifier classifier;
  classifier.Fit(embedded, labels, 3);
  EXPECT_LT(ErrorRate(classifier.Predict(embedded), labels), 0.1);
}

TEST(RldaTest, ApproachesLdaAsAlphaVanishesOnFullRankData) {
  // On full-rank (m >> n) data, RLDA with tiny alpha should classify like
  // LDA (the regularizer becomes negligible).
  Rng rng(7);
  Matrix x;
  std::vector<int> labels;
  MakeBlobs(3, 50, 6, 3.0, &rng, &x, &labels);
  const LdaModel lda = FitLda(x, labels, 3);
  RldaOptions options;
  options.alpha = 1e-8;
  const RldaModel rlda = FitRlda(x, labels, 3, options);
  ASSERT_TRUE(lda.converged);
  ASSERT_TRUE(rlda.converged);
  const Matrix lda_embedded = lda.embedding.Transform(x);
  const Matrix rlda_embedded = rlda.embedding.Transform(x);
  CentroidClassifier lda_classifier;
  lda_classifier.Fit(lda_embedded, labels, 3);
  CentroidClassifier rlda_classifier;
  rlda_classifier.Fit(rlda_embedded, labels, 3);
  const std::vector<int> a = lda_classifier.Predict(lda_embedded);
  const std::vector<int> b = rlda_classifier.Predict(rlda_embedded);
  int disagreements = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++disagreements;
  }
  EXPECT_LE(disagreements, 2);
}

TEST(RldaTest, AlphaZeroOnRankDeficientReportsFailure) {
  // alpha == 0 is accepted (same contract as SRDA): on rank-deficient data
  // the Cholesky factorization fails and the model reports converged ==
  // false instead of aborting.
  Matrix x(4, 2);  // All-zero columns: the scatter matrix is singular.
  RldaOptions options;
  options.alpha = 0.0;
  const RldaModel model = FitRlda(x, {0, 0, 1, 1}, 2, options);
  EXPECT_FALSE(model.converged);
}

TEST(RldaDeathTest, NegativeAlphaAborts) {
  Matrix x(4, 2);
  RldaOptions options;
  options.alpha = -1.0;
  EXPECT_DEATH(FitRlda(x, {0, 0, 1, 1}, 2, options), "alpha");
}

}  // namespace
}  // namespace srda
