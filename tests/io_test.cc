// Tests for dataset and model file I/O.

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/srda.h"
#include "io/dataset_io.h"
#include "matrix/blas.h"

namespace srda {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

SparseDataset MakeSparseDataset() {
  SparseDataset dataset;
  dataset.num_classes = 2;
  SparseMatrixBuilder builder(3, 5);
  builder.Add(0, 0, 1.5);
  builder.Add(0, 4, -2.25);
  builder.Add(1, 2, 0.125);
  // Row 2 intentionally empty.
  dataset.features = std::move(builder).Build();
  dataset.labels = {0, 1, 0};
  return dataset;
}

TEST(LibSvmIoTest, RoundTrip) {
  const std::string path = TempPath("roundtrip.libsvm");
  const SparseDataset original = MakeSparseDataset();
  WriteLibSvmFile(original, path);
  const SparseDataset loaded = ReadLibSvmFile(path, 5);
  EXPECT_EQ(loaded.num_classes, 2);
  EXPECT_EQ(loaded.labels, original.labels);
  EXPECT_EQ(
      MaxAbsDiff(loaded.features.ToDense(), original.features.ToDense()),
      0.0);
  std::remove(path.c_str());
}

TEST(LibSvmIoTest, InfersWidthFromIndices) {
  const std::string path = TempPath("width.libsvm");
  {
    std::ofstream out(path);
    out << "1 3:2.5\n2 7:1.0\n";
  }
  const SparseDataset loaded = ReadLibSvmFile(path);
  EXPECT_EQ(loaded.features.cols(), 7);
  EXPECT_EQ(loaded.features.rows(), 2);
  EXPECT_EQ(loaded.num_classes, 2);
  EXPECT_DOUBLE_EQ(loaded.features.ToDense()(0, 2), 2.5);
  EXPECT_DOUBLE_EQ(loaded.features.ToDense()(1, 6), 1.0);
  std::remove(path.c_str());
}

TEST(LibSvmIoTest, SkipsCommentsAndBlankLines) {
  const std::string path = TempPath("comments.libsvm");
  {
    std::ofstream out(path);
    out << "# header comment\n\n1 1:1.0\n\n2 2:2.0\n";
  }
  const SparseDataset loaded = ReadLibSvmFile(path);
  EXPECT_EQ(loaded.features.rows(), 2);
  std::remove(path.c_str());
}

TEST(LibSvmIoTest, LabelsCompactedBySortedRawValue) {
  const std::string path = TempPath("labels.libsvm");
  {
    std::ofstream out(path);
    out << "7 1:1\n3 1:1\n7 1:1\n9 1:1\n";
  }
  const SparseDataset loaded = ReadLibSvmFile(path);
  EXPECT_EQ(loaded.num_classes, 3);
  // Compact ids follow ascending raw value {3, 7, 9}, independent of the
  // order rows appear in the file.
  EXPECT_EQ(loaded.labels, (std::vector<int>{1, 0, 1, 2}));
  EXPECT_EQ(loaded.raw_labels, (std::vector<int>{3, 7, 9}));
  std::remove(path.c_str());
}

// Regression: first-appearance compaction used to permute class ids on a
// write -> read round trip whenever row order did not match label order
// (labels {2, 0, 1} came back as {0, 1, 2}).
TEST(LibSvmIoTest, RoundTripPreservesLabelIdentities) {
  const std::string path = TempPath("permuted.libsvm");
  SparseDataset original;
  original.num_classes = 3;
  SparseMatrixBuilder builder(3, 2);
  builder.Add(0, 0, 1.0);
  builder.Add(1, 1, 2.0);
  builder.Add(2, 0, 3.0);
  original.features = std::move(builder).Build();
  original.labels = {2, 0, 1};
  WriteLibSvmFile(original, path);
  const SparseDataset loaded = ReadLibSvmFile(path, 2);
  EXPECT_EQ(loaded.labels, original.labels);
  EXPECT_EQ(loaded.raw_labels, (std::vector<int>{1, 2, 3}));

  // A second round trip (now carrying raw_labels) is a fixed point.
  WriteLibSvmFile(loaded, path);
  const SparseDataset again = ReadLibSvmFile(path, 2);
  EXPECT_EQ(again.labels, original.labels);
  EXPECT_EQ(again.raw_labels, loaded.raw_labels);
  std::remove(path.c_str());
}

TEST(LibSvmIoDeathTest, MalformedPairAborts) {
  const std::string path = TempPath("bad.libsvm");
  {
    std::ofstream out(path);
    out << "1 nonsense\n";
  }
  EXPECT_DEATH(ReadLibSvmFile(path), "malformed pair");
  std::remove(path.c_str());
}

TEST(LibSvmIoDeathTest, MissingFileAborts) {
  EXPECT_DEATH(ReadLibSvmFile(TempPath("does-not-exist.libsvm")),
               "cannot open");
}

// Regression: these malformed fields used to escape as uncaught
// std::invalid_argument / std::out_of_range from std::stoi/std::stod;
// every one must now die with a located path:line SRDA_CHECK message.
TEST(LibSvmIoDeathTest, EmptyIndexAborts) {
  const std::string path = TempPath("empty-index.libsvm");
  {
    std::ofstream out(path);
    out << "1 :3\n";
  }
  EXPECT_DEATH(ReadLibSvmFile(path), "empty-index.libsvm:1: malformed "
                                     "feature index in pair ':3'");
  std::remove(path.c_str());
}

TEST(LibSvmIoDeathTest, NonNumericIndexAborts) {
  const std::string path = TempPath("bad-index.libsvm");
  {
    std::ofstream out(path);
    out << "1 x:1\n";
  }
  EXPECT_DEATH(ReadLibSvmFile(path),
               "bad-index.libsvm:1: malformed feature index in pair 'x:1'");
  std::remove(path.c_str());
}

TEST(LibSvmIoDeathTest, NonNumericValueAborts) {
  const std::string path = TempPath("bad-value.libsvm");
  {
    std::ofstream out(path);
    out << "1 1:1.0\n2 2:abc\n";
  }
  EXPECT_DEATH(ReadLibSvmFile(path),
               "bad-value.libsvm:2: malformed feature value in pair '2:abc'");
  std::remove(path.c_str());
}

TEST(LibSvmIoDeathTest, OutOfRangeIndexAborts) {
  const std::string path = TempPath("overflow.libsvm");
  {
    std::ofstream out(path);
    out << "1 99999999999999999999:1.0\n";
  }
  EXPECT_DEATH(ReadLibSvmFile(path), "malformed feature index");
  std::remove(path.c_str());
}

TEST(LibSvmIoDeathTest, NonNumericLabelAborts) {
  const std::string path = TempPath("bad-label.libsvm");
  {
    std::ofstream out(path);
    out << "abc 1:1.0\n";
  }
  EXPECT_DEATH(ReadLibSvmFile(path),
               "bad-label.libsvm:1: malformed label 'abc'");
  std::remove(path.c_str());
}

TEST(DenseCsvIoTest, RoundTrip) {
  const std::string path = TempPath("dense.csv");
  DenseDataset original;
  original.num_classes = 3;
  original.features = Matrix::FromRows({{1.5, -2.0}, {0.0, 3.25}, {7.0, 8.0}});
  original.labels = {0, 2, 1};
  WriteDenseCsvFile(original, path);
  const DenseDataset loaded = ReadDenseCsvFile(path);
  EXPECT_EQ(loaded.num_classes, 3);
  EXPECT_EQ(loaded.labels, original.labels);
  EXPECT_EQ(MaxAbsDiff(loaded.features, original.features), 0.0);
  std::remove(path.c_str());
}

// Regression: gapped label ids used to fabricate empty classes
// (num_classes = max_label + 1); they now compact like the LibSVM reader.
TEST(DenseCsvIoTest, GappedLabelsCompact) {
  const std::string path = TempPath("gapped.csv");
  {
    std::ofstream out(path);
    out << "0,1.0\n2,2.0\n0,3.0\n";
  }
  const DenseDataset loaded = ReadDenseCsvFile(path);
  EXPECT_EQ(loaded.num_classes, 2);
  EXPECT_EQ(loaded.labels, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(loaded.raw_labels, (std::vector<int>{0, 2}));

  // Writing preserves the raw ids, so the round trip is stable.
  WriteDenseCsvFile(loaded, path);
  const DenseDataset again = ReadDenseCsvFile(path);
  EXPECT_EQ(again.labels, loaded.labels);
  EXPECT_EQ(again.raw_labels, loaded.raw_labels);
  EXPECT_EQ(MaxAbsDiff(again.features, loaded.features), 0.0);
  std::remove(path.c_str());
}

TEST(DenseCsvIoDeathTest, RaggedRowAborts) {
  const std::string path = TempPath("ragged.csv");
  {
    std::ofstream out(path);
    out << "0,1.0,2.0\n1,3.0\n";
  }
  EXPECT_DEATH(ReadDenseCsvFile(path), "ragged");
  std::remove(path.c_str());
}

// Regression: a non-numeric cell used to raise std::invalid_argument.
TEST(DenseCsvIoDeathTest, NonNumericCellAborts) {
  const std::string path = TempPath("bad-cell.csv");
  {
    std::ofstream out(path);
    out << "0,1.0,2.0\n1,abc,4.0\n";
  }
  EXPECT_DEATH(ReadDenseCsvFile(path), "bad-cell.csv:2: malformed cell 'abc'");
  std::remove(path.c_str());
}

TEST(DenseCsvIoDeathTest, NonNumericLabelAborts) {
  const std::string path = TempPath("bad-csv-label.csv");
  {
    std::ofstream out(path);
    out << "x,1.0\n";
  }
  EXPECT_DEATH(ReadDenseCsvFile(path),
               "bad-csv-label.csv:1: malformed label 'x'");
  std::remove(path.c_str());
}

TEST(DenseBinaryIoTest, RoundTripExact) {
  const std::string path = TempPath("dense.bin");
  Rng rng(41);
  DenseDataset original;
  original.num_classes = 2;
  original.raw_labels = {3, 8};
  original.features = Matrix(5, 3);
  for (int i = 0; i < 5; ++i) {
    original.labels.push_back(i % 2);
    for (int j = 0; j < 3; ++j) original.features(i, j) = rng.NextGaussian();
  }
  WriteDenseBinaryFile(original, path);
  const DenseDataset loaded = ReadDenseBinaryFile(path);
  EXPECT_EQ(loaded.num_classes, 2);
  EXPECT_EQ(loaded.labels, original.labels);
  EXPECT_EQ(loaded.raw_labels, original.raw_labels);
  EXPECT_EQ(MaxAbsDiff(loaded.features, original.features), 0.0);
  std::remove(path.c_str());
}

TEST(DenseBinaryIoDeathTest, WrongMagicAborts) {
  const std::string path = TempPath("not-binary.bin");
  {
    std::ofstream out(path);
    out << "something else entirely, long enough for a header\n";
  }
  EXPECT_DEATH(ReadDenseBinaryFile(path), "not an srda dense-binary file");
  std::remove(path.c_str());
}

TEST(EmbeddingIoTest, RoundTripExact) {
  const std::string path = TempPath("model.txt");
  Rng rng(1);
  Matrix projection(4, 2);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 2; ++j) projection(i, j) = rng.NextGaussian();
  }
  Vector bias{0.5, -1.25};
  const LinearEmbedding original(projection, bias);
  SaveEmbedding(original, path);
  const LinearEmbedding loaded = LoadEmbedding(path);
  EXPECT_EQ(loaded.input_dim(), 4);
  EXPECT_EQ(loaded.output_dim(), 2);
  EXPECT_EQ(MaxAbsDiff(loaded.projection(), original.projection()), 0.0);
  EXPECT_EQ(MaxAbsDiff(loaded.bias(), original.bias()), 0.0);
  std::remove(path.c_str());
}

TEST(EmbeddingIoTest, TrainedModelSurvivesRoundTrip) {
  // Train SRDA, save, load, verify identical embeddings of new data.
  Rng rng(2);
  Matrix x(30, 5);
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    labels.push_back(i % 3);
    for (int j = 0; j < 5; ++j) {
      x(i, j) = 2.0 * (j == i % 3) + rng.NextGaussian();
    }
  }
  const SrdaModel model = FitSrda(x, labels, 3);
  const std::string path = TempPath("srda-model.txt");
  SaveEmbedding(model.embedding, path);
  const LinearEmbedding loaded = LoadEmbedding(path);
  Matrix queries(4, 5);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 5; ++j) queries(i, j) = rng.NextGaussian();
  }
  EXPECT_EQ(MaxAbsDiff(model.embedding.Transform(queries),
                       loaded.Transform(queries)),
            0.0);
  std::remove(path.c_str());
}

TEST(EmbeddingIoDeathTest, WrongMagicAborts) {
  const std::string path = TempPath("not-a-model.txt");
  {
    std::ofstream out(path);
    out << "something else\n";
  }
  EXPECT_DEATH(LoadEmbedding(path), "not an srda-embedding");
  std::remove(path.c_str());
}

// Property sweep: random sparse datasets survive the LibSVM round trip
// bit-for-bit (values are written with 17 significant digits).
class LibSvmRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(LibSvmRoundTripTest, RandomDatasetsExact) {
  Rng rng(800 + GetParam());
  const int rows = 3 + GetParam() * 2;
  const int cols = 5 + GetParam() * 3;
  const int classes = 2 + GetParam() % 3;
  SparseDataset original;
  original.num_classes = classes;
  SparseMatrixBuilder builder(rows, cols);
  for (int i = 0; i < rows; ++i) {
    original.labels.push_back(i % classes);
    for (int j = 0; j < cols; ++j) {
      if (rng.NextDouble() < 0.3) builder.Add(i, j, rng.NextGaussian());
    }
  }
  original.features = std::move(builder).Build();
  // Guarantee every class appears (labels cycle) — required by validation.
  const std::string path =
      TempPath("sweep-" + std::to_string(GetParam()) + ".libsvm");
  WriteLibSvmFile(original, path);
  const SparseDataset loaded = ReadLibSvmFile(path, cols);
  EXPECT_EQ(loaded.labels, original.labels);
  EXPECT_EQ(loaded.features.NumNonZeros(), original.features.NumNonZeros());
  EXPECT_EQ(
      MaxAbsDiff(loaded.features.ToDense(), original.features.ToDense()),
      0.0);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Shapes, LibSvmRoundTripTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace srda
