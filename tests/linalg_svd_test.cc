// Tests for the cross-product thin SVD.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/svd.h"
#include "matrix/blas.h"

namespace srda {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

// U diag(s) V^T from an SvdResult.
Matrix Reconstruct(const SvdResult& svd) {
  Matrix us = svd.u;
  for (int k = 0; k < svd.rank; ++k) {
    for (int i = 0; i < us.rows(); ++i) us(i, k) *= svd.singular_values[k];
  }
  return MultiplyTransposedB(us, svd.v);
}

TEST(ThinSvdTest, TallMatrixReconstructs) {
  Rng rng(1);
  const Matrix a = RandomMatrix(12, 5, &rng);
  const SvdResult svd = ThinSvd(a);
  ASSERT_TRUE(svd.converged);
  EXPECT_EQ(svd.rank, 5);
  EXPECT_LT(MaxAbsDiff(Reconstruct(svd), a), 1e-8);
}

TEST(ThinSvdTest, WideMatrixReconstructs) {
  Rng rng(2);
  const Matrix a = RandomMatrix(4, 11, &rng);
  const SvdResult svd = ThinSvd(a);
  ASSERT_TRUE(svd.converged);
  EXPECT_EQ(svd.rank, 4);
  EXPECT_LT(MaxAbsDiff(Reconstruct(svd), a), 1e-8);
}

TEST(ThinSvdTest, SingularValuesDescendingPositive) {
  Rng rng(3);
  const Matrix a = RandomMatrix(9, 6, &rng);
  const SvdResult svd = ThinSvd(a);
  for (int k = 1; k < svd.rank; ++k) {
    EXPECT_LE(svd.singular_values[k], svd.singular_values[k - 1]);
    EXPECT_GT(svd.singular_values[k], 0.0);
  }
}

TEST(ThinSvdTest, FactorsOrthonormal) {
  Rng rng(4);
  const Matrix a = RandomMatrix(10, 7, &rng);
  const SvdResult svd = ThinSvd(a);
  EXPECT_LT(MaxAbsDiff(Gram(svd.u), Matrix::Identity(svd.rank)), 1e-8);
  EXPECT_LT(MaxAbsDiff(Gram(svd.v), Matrix::Identity(svd.rank)), 1e-8);
}

TEST(ThinSvdTest, RankDeficientTruncated) {
  // Rank-2 matrix built from two outer products.
  Rng rng(5);
  const Matrix left = RandomMatrix(8, 2, &rng);
  const Matrix right = RandomMatrix(2, 6, &rng);
  const Matrix a = Multiply(left, right);
  // The cross-product SVD resolves zero singular values only to about
  // sqrt(eps) * sigma_max, hence the loose truncation tolerance.
  const SvdResult svd = ThinSvd(a, 1e-6);
  ASSERT_TRUE(svd.converged);
  EXPECT_EQ(svd.rank, 2);
  EXPECT_LT(MaxAbsDiff(Reconstruct(svd), a), 1e-7);
}

TEST(ThinSvdTest, KnownDiagonalSingularValues) {
  Matrix a(3, 2);
  a(0, 0) = 3.0;
  a(1, 1) = 4.0;
  const SvdResult svd = ThinSvd(a);
  ASSERT_EQ(svd.rank, 2);
  EXPECT_NEAR(svd.singular_values[0], 4.0, 1e-10);
  EXPECT_NEAR(svd.singular_values[1], 3.0, 1e-10);
}

TEST(ThinSvdTest, RankOneMatrix) {
  Matrix a(5, 4);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) a(i, j) = 2.0;
  }
  const SvdResult svd = ThinSvd(a, 1e-8);
  EXPECT_EQ(svd.rank, 1);
  // Frobenius norm of the rank-1 matrix equals its single singular value.
  EXPECT_NEAR(svd.singular_values[0], std::sqrt(5.0 * 4.0) * 2.0, 1e-9);
}

TEST(ThinSvdTest, FrobeniusNormIdentity) {
  Rng rng(6);
  const Matrix a = RandomMatrix(7, 9, &rng);
  const SvdResult svd = ThinSvd(a);
  double sv_sq = 0.0;
  for (int k = 0; k < svd.rank; ++k) {
    sv_sq += svd.singular_values[k] * svd.singular_values[k];
  }
  double fro_sq = 0.0;
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 9; ++j) fro_sq += a(i, j) * a(i, j);
  }
  EXPECT_NEAR(sv_sq, fro_sq, 1e-8 * fro_sq);
}

TEST(ThinSvdDeathTest, EmptyMatrixAborts) {
  EXPECT_DEATH(ThinSvd(Matrix(0, 3)), "empty");
}

// Property sweep over shapes: reconstruction and orthogonality.
struct SvdShape {
  int rows;
  int cols;
};

class ThinSvdShapeTest : public ::testing::TestWithParam<SvdShape> {};

TEST_P(ThinSvdShapeTest, ReconstructsAndOrthogonal) {
  Rng rng(200 + GetParam().rows * 31 + GetParam().cols);
  const Matrix a = RandomMatrix(GetParam().rows, GetParam().cols, &rng);
  const SvdResult svd = ThinSvd(a);
  ASSERT_TRUE(svd.converged);
  EXPECT_LT(MaxAbsDiff(Reconstruct(svd), a), 1e-7);
  EXPECT_LT(MaxAbsDiff(Gram(svd.u), Matrix::Identity(svd.rank)), 1e-7);
  EXPECT_LT(MaxAbsDiff(Gram(svd.v), Matrix::Identity(svd.rank)), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ThinSvdShapeTest,
    ::testing::Values(SvdShape{1, 1}, SvdShape{1, 8}, SvdShape{8, 1},
                      SvdShape{5, 5}, SvdShape{20, 3}, SvdShape{3, 20},
                      SvdShape{16, 16}, SvdShape{30, 12}, SvdShape{12, 30}));

}  // namespace
}  // namespace srda
