// Tests for the thin Householder QR decomposition.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/qr.h"
#include "matrix/blas.h"

namespace srda {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

TEST(ThinQrTest, Reconstructs) {
  Rng rng(1);
  const Matrix a = RandomMatrix(10, 4, &rng);
  const QrResult qr = ThinQr(a);
  EXPECT_EQ(qr.q.rows(), 10);
  EXPECT_EQ(qr.q.cols(), 4);
  EXPECT_EQ(qr.r.rows(), 4);
  EXPECT_LT(MaxAbsDiff(Multiply(qr.q, qr.r), a), 1e-10);
}

TEST(ThinQrTest, QHasOrthonormalColumns) {
  Rng rng(2);
  const Matrix a = RandomMatrix(12, 5, &rng);
  const QrResult qr = ThinQr(a);
  EXPECT_LT(MaxAbsDiff(Gram(qr.q), Matrix::Identity(5)), 1e-11);
}

TEST(ThinQrTest, RIsUpperTriangular) {
  Rng rng(3);
  const Matrix a = RandomMatrix(8, 6, &rng);
  const QrResult qr = ThinQr(a);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < i; ++j) EXPECT_EQ(qr.r(i, j), 0.0);
  }
}

TEST(ThinQrTest, SquareMatrix) {
  Rng rng(4);
  const Matrix a = RandomMatrix(6, 6, &rng);
  const QrResult qr = ThinQr(a);
  EXPECT_LT(MaxAbsDiff(Multiply(qr.q, qr.r), a), 1e-10);
  EXPECT_LT(MaxAbsDiff(Gram(qr.q), Matrix::Identity(6)), 1e-11);
}

TEST(ThinQrTest, SingleColumn) {
  Matrix a(4, 1);
  a(0, 0) = 3.0;
  a(1, 0) = 4.0;
  const QrResult qr = ThinQr(a);
  EXPECT_NEAR(std::abs(qr.r(0, 0)), 5.0, 1e-12);
  EXPECT_LT(MaxAbsDiff(Multiply(qr.q, qr.r), a), 1e-12);
}

TEST(ThinQrTest, RankDeficientStillFactors) {
  // Two identical columns: R becomes singular but Q R must equal A.
  Rng rng(5);
  Matrix a = RandomMatrix(7, 3, &rng);
  for (int i = 0; i < 7; ++i) a(i, 2) = a(i, 0);
  const QrResult qr = ThinQr(a);
  EXPECT_LT(MaxAbsDiff(Multiply(qr.q, qr.r), a), 1e-10);
  EXPECT_NEAR(qr.r(2, 2), 0.0, 1e-10);
}

TEST(ThinQrTest, ZeroColumnHandled) {
  Matrix a(5, 2);
  a(0, 1) = 1.0;  // First column all zero.
  const QrResult qr = ThinQr(a);
  EXPECT_LT(MaxAbsDiff(Multiply(qr.q, qr.r), a), 1e-12);
}

TEST(ThinQrDeathTest, WideMatrixAborts) {
  EXPECT_DEATH(ThinQr(Matrix(2, 3)), "rows >= cols");
}

// Property sweep: QR of random shapes.
struct QrShape {
  int rows;
  int cols;
};

class ThinQrShapeTest : public ::testing::TestWithParam<QrShape> {};

TEST_P(ThinQrShapeTest, FactorsCorrectly) {
  Rng rng(300 + GetParam().rows * 17 + GetParam().cols);
  const Matrix a = RandomMatrix(GetParam().rows, GetParam().cols, &rng);
  const QrResult qr = ThinQr(a);
  EXPECT_LT(MaxAbsDiff(Multiply(qr.q, qr.r), a), 1e-9);
  EXPECT_LT(MaxAbsDiff(Gram(qr.q), Matrix::Identity(GetParam().cols)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ThinQrShapeTest,
                         ::testing::Values(QrShape{1, 1}, QrShape{5, 1},
                                           QrShape{5, 5}, QrShape{20, 7},
                                           QrShape{40, 25}, QrShape{64, 64}));

}  // namespace
}  // namespace srda
