// Tests for src/common: checks, RNG, flam model, table printer.

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/flops.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

namespace srda {
namespace {

TEST(CheckTest, PassingConditionDoesNothing) {
  SRDA_CHECK(1 + 1 == 2) << "never printed";
  SRDA_CHECK_EQ(3, 3);
  SRDA_CHECK_LT(1, 2);
  SRDA_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, FailingConditionAborts) {
  EXPECT_DEATH(SRDA_CHECK(false) << "boom message", "boom message");
}

TEST(CheckDeathTest, ComparisonMacroAborts) {
  EXPECT_DEATH(SRDA_CHECK_EQ(1, 2), "SRDA_CHECK failed");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianWithMeanAndStddev) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngDeathTest, NegativeStddevAborts) {
  Rng rng(1);
  EXPECT_DEATH(rng.NextGaussian(0.0, -1.0), "stddev");
}

TEST(RngTest, BoundedDrawsCoverRange) {
  Rng rng(19);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = rng.NextUint64Bounded(7);
    EXPECT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(23);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int x = rng.NextInt(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> values = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng child1 = parent.Split();
  Rng child2 = parent.Split();
  // Different sub-streams should not collide on first draws.
  EXPECT_NE(child1.NextUint64(), child2.NextUint64());
}

TEST(ZipfTableTest, RankOneMostFrequent) {
  Rng rng(37);
  ZipfTable zipf(100, 1.1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
}

TEST(ZipfTableTest, SamplesInRange) {
  Rng rng(41);
  ZipfTable zipf(5, 1.0);
  for (int i = 0; i < 1000; ++i) {
    const int x = zipf.Sample(&rng);
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 5);
  }
}

TEST(FlopsTest, LdaCubicInMinDimension) {
  // Doubling t = min(m, n) with huge other dimension should scale the cubic
  // term by 8.
  const CostEstimate small = LdaCost(1000, 1000, 10);
  const CostEstimate large = LdaCost(2000, 2000, 10);
  EXPECT_GT(large.flam / small.flam, 7.0);
}

TEST(FlopsTest, SrdaLsqrLinearInM) {
  const CostEstimate small = SrdaLsqrSparseCost(10000, 100000, 20, 20, 100.0);
  const CostEstimate large = SrdaLsqrSparseCost(20000, 100000, 20, 20, 100.0);
  // Linear in m up to the additive n terms.
  EXPECT_LT(large.flam / small.flam, 2.2);
  EXPECT_GT(large.flam / small.flam, 1.5);
}

TEST(FlopsTest, MaximumSpeedupNineAtSquare) {
  // Paper: when m == n the normal-equations SRDA is 9x cheaper than LDA.
  const int64_t m = 4096;
  const CostEstimate lda = LdaCost(m, m, 2);
  const CostEstimate srda = SrdaNormalEquationsCost(m, m, 2);
  EXPECT_NEAR(lda.flam / srda.flam, 9.0, 0.5);
}

TEST(FlopsTest, SparseCheaperThanDenseLsqr) {
  const CostEstimate dense = SrdaLsqrDenseCost(10000, 26214, 20, 15);
  const CostEstimate sparse = SrdaLsqrSparseCost(10000, 26214, 20, 15, 100.0);
  EXPECT_LT(sparse.flam, dense.flam);
  EXPECT_LT(sparse.memory_doubles, dense.memory_doubles);
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"A", "LongHeader"});
  table.AddRow({"wide-cell-value", "x"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("LongHeader"), std::string::npos);
  EXPECT_NE(text.find("wide-cell-value"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TablePrinterDeathTest, RowWidthMismatchAborts) {
  TablePrinter table({"A", "B"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatMeanStd(31.84, 1.06), "31.8 +- 1.1");
}

}  // namespace
}  // namespace srda
