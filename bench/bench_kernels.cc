// Google-benchmark microbenchmarks for the numeric kernels every algorithm
// in the library is built from: dense products, Gram matrices, Cholesky,
// the symmetric eigensolver, SVD, QR, sparse mat-vec, and LSQR.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/golub_reinsch_svd.h"
#include "linalg/linear_operator.h"
#include "linalg/lsqr.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "matrix/blas.h"
#include "sparse/sparse_matrix.h"

namespace srda {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

Matrix RandomSpd(int n, Rng* rng) {
  Matrix a = RandomMatrix(n, n, rng);
  Matrix spd = Gram(a);
  AddDiagonal(1.0, &spd);
  return spd;
}

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Matrix a = RandomMatrix(n, n, &rng);
  const Matrix b = RandomMatrix(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Multiply(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Gram(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const Matrix a = RandomMatrix(2 * n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gram(a));
  }
}
BENCHMARK(BM_Gram)->Arg(64)->Arg(128)->Arg(256);

void BM_Cholesky(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const Matrix spd = RandomSpd(n, &rng);
  for (auto _ : state) {
    Cholesky chol;
    benchmark::DoNotOptimize(chol.Factor(spd));
  }
}
BENCHMARK(BM_Cholesky)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_SymmetricEigen(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const Matrix spd = RandomSpd(n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymmetricEigen(spd));
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(64)->Arg(128)->Arg(256);

void BM_ThinSvd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  const Matrix a = RandomMatrix(4 * n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThinSvd(a));
  }
}
BENCHMARK(BM_ThinSvd)->Arg(32)->Arg(64)->Arg(128);

void BM_ThinSvdGolubReinsch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(15);
  const Matrix a = RandomMatrix(4 * n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThinSvdGolubReinsch(a));
  }
}
BENCHMARK(BM_ThinSvdGolubReinsch)->Arg(32)->Arg(64)->Arg(128);

void BM_CholeskyRank1Update(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(16);
  const Matrix spd = RandomSpd(n, &rng);
  Cholesky chol;
  chol.Factor(spd);
  const Matrix factor = chol.factor();
  Vector v(n);
  for (int i = 0; i < n; ++i) v[i] = rng.NextGaussian();
  for (auto _ : state) {
    Matrix work = factor;
    CholeskyRank1Update(&work, v);
    benchmark::DoNotOptimize(work);
  }
}
BENCHMARK(BM_CholeskyRank1Update)->Arg(64)->Arg(256)->Arg(1024);

void BM_ThinQr(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  const Matrix a = RandomMatrix(4 * n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ThinQr(a));
  }
}
BENCHMARK(BM_ThinQr)->Arg(32)->Arg(64)->Arg(128);

void BM_SparseMatVec(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = 10000;
  Rng rng(7);
  SparseMatrixBuilder builder(m, n);
  for (int i = 0; i < m; ++i) {
    for (int k = 0; k < 100; ++k) {
      builder.Add(i, static_cast<int>(rng.NextUint64Bounded(n)),
                  rng.NextGaussian());
    }
  }
  const SparseMatrix sparse = std::move(builder).Build();
  Vector x(n);
  for (int j = 0; j < n; ++j) x[j] = rng.NextGaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse.Multiply(x));
  }
  state.SetItemsProcessed(state.iterations() * sparse.NumNonZeros());
}
BENCHMARK(BM_SparseMatVec)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_Lsqr(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = 5000;
  Rng rng(8);
  SparseMatrixBuilder builder(m, n);
  for (int i = 0; i < m; ++i) {
    for (int k = 0; k < 80; ++k) {
      builder.Add(i, static_cast<int>(rng.NextUint64Bounded(n)),
                  rng.NextGaussian());
    }
  }
  const SparseMatrix sparse = std::move(builder).Build();
  Vector b(m);
  for (int i = 0; i < m; ++i) b[i] = rng.NextGaussian();
  const SparseOperator op(&sparse);
  LsqrOptions options;
  options.max_iterations = 15;
  options.damp = 1.0;
  options.atol = 0.0;
  options.btol = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Lsqr(op, b, options));
  }
}
BENCHMARK(BM_Lsqr)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace srda

BENCHMARK_MAIN();
