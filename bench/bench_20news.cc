// Reproduces Tables IX & X and Figure 4: error rate and training time on the
// 20Newsgroups-like sparse text corpus, as a function of the training
// fraction.
//
// Mirrors the paper's applicability pattern: SRDA (LSQR, 15 iterations) runs
// at every size straight on the sparse matrix; LDA and IDR/QR require a
// dense (centered) copy of the training data and drop out when its working
// set exceeds the machine's memory budget (the paper's 2 GB box); RLDA would
// additionally need the n x n scatter (26214^2 doubles = 5.5 TB) and is
// infeasible at every size, so its column is blank as in the paper.
//
// Pass --full for the paper-scale corpus (18940 documents).

#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "classify/classifiers.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/stopwatch.h"
#include "core/idr_qr.h"
#include "core/lda.h"
#include "dataset/split.h"
#include "dataset/text_generator.h"

namespace srda {
namespace bench {
namespace {

constexpr double kPaperMemoryBudgetBytes = 2.0 * 1024 * 1024 * 1024;
constexpr int kPaperCorpusSize = 18940;

// Estimated peak working set of the dense algorithms: the original dense
// copy, the centered copy, and (for LDA's SVD) the recovered singular
// factor, all m_train x n doubles.
double LdaWorkingSetBytes(int m_train, int n) {
  return 3.0 * m_train * n * sizeof(double);
}
double IdrQrWorkingSetBytes(int m_train, int n) {
  return 1.5 * m_train * n * sizeof(double);
}

// Evaluates an embedding with dense train features but sparse test features
// (the test set is never densified).
double EvaluateMixed(const LinearEmbedding& embedding,
                     const DenseDataset& train, const SparseDataset& test) {
  const Matrix train_embedded = embedding.Transform(train.features);
  const Matrix test_embedded = embedding.Transform(test.features);
  CentroidClassifier classifier;
  classifier.Fit(train_embedded, train.labels, train.num_classes);
  return 100.0 * ErrorRate(classifier.Predict(test_embedded), test.labels);
}

int Main(int argc, char** argv) {
  BenchObservability obs(argc, argv);
  const bool full = HasFlag(argc, argv, "--full");
  const bool smoke = HasFlag(argc, argv, "--smoke");

  TextGeneratorOptions options;
  options.num_topics = 20;
  options.docs_per_topic = smoke ? 30 : (full ? 947 : 250);
  if (smoke) {
    options.vocabulary_size = 2000;
    options.topic_vocabulary_size = 200;
  }
  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.2}
            : (full ? std::vector<double>{0.05, 0.10, 0.20, 0.30, 0.40, 0.50}
                    : std::vector<double>{0.05, 0.10, 0.20});
  const int num_splits = smoke ? 1 : (full ? 5 : 2);
  const int corpus_size = options.num_topics * options.docs_per_topic;
  // Budget scales with corpus size so the small profile reproduces the same
  // blank cells as the paper-scale run.
  const double budget = kPaperMemoryBudgetBytes *
                        static_cast<double>(corpus_size) / kPaperCorpusSize;

  std::cout << "Experiment: Tables IX & X / Figure 4 (20Newsgroups-like)\n"
            << "Profile: "
            << (smoke ? "smoke (tiny sizes, no checks)"
                      : (full ? "full" : "small (use --full)"))
            << "  m=" << corpus_size << " n=" << options.vocabulary_size
            << " c=" << options.num_topics << " splits=" << num_splits
            << "  memory budget=" << FormatDouble(budget / 1e9, 2)
            << " GB (scaled from the paper's 2 GB)\n";

  const SparseDataset dataset = GenerateTextDataset(options);
  std::cout << "corpus: " << dataset.features.rows() << " docs, avg "
            << FormatDouble(dataset.features.AvgNonZerosPerRow(), 1)
            << " non-zero terms per doc\n";

  const std::vector<Algorithm> algorithms = {
      Algorithm::kLda, Algorithm::kRlda, Algorithm::kSrda,
      Algorithm::kIdrQr};
  std::vector<std::vector<SweepCell>> cells(
      fractions.size(), std::vector<SweepCell>(algorithms.size()));

  Rng rng(404);
  for (size_t f = 0; f < fractions.size(); ++f) {
    std::vector<std::vector<double>> errors(algorithms.size());
    std::vector<std::vector<double>> times(algorithms.size());
    for (int split_index = 0; split_index < num_splits; ++split_index) {
      const TrainTestSplit split = StratifiedSplitByFraction(
          dataset.labels, dataset.num_classes, fractions[f], &rng);
      const SparseDataset train = Subset(dataset, split.train);
      const SparseDataset test = Subset(dataset, split.test);
      const int m_train = train.features.rows();
      const int n = train.features.cols();

      // SRDA: sparse LSQR, 15 iterations as in the paper.
      {
        const RunResult run = RunSparseSrda(train, test, /*alpha=*/1.0,
                                            /*lsqr_iterations=*/15);
        errors[2].push_back(run.error_percent);
        times[2].push_back(run.seconds);
      }
      // LDA: only while the dense working set fits the budget.
      if (LdaWorkingSetBytes(m_train, n) <= budget) {
        const DenseDataset dense_train = Densify(train);
        Stopwatch watch;
        const LdaModel model = FitLda(dense_train.features,
                                      dense_train.labels, 20);
        times[0].push_back(watch.ElapsedSeconds());
        errors[0].push_back(EvaluateMixed(model.embedding, dense_train, test));
      }
      // IDR/QR: slightly smaller working set, runs a bit longer.
      if (IdrQrWorkingSetBytes(m_train, n) <= budget) {
        const DenseDataset dense_train = Densify(train);
        Stopwatch watch;
        const IdrQrModel model = FitIdrQr(dense_train.features,
                                          dense_train.labels, 20);
        times[3].push_back(watch.ElapsedSeconds());
        errors[3].push_back(EvaluateMixed(model.embedding, dense_train, test));
      }
      // RLDA: n x n scatter never fits; column stays blank.
    }
    for (size_t a = 0; a < algorithms.size(); ++a) {
      if (errors[a].empty()) continue;
      const MeanStd error_stats = ComputeMeanStd(errors[a]);
      const MeanStd time_stats = ComputeMeanStd(times[a]);
      SweepCell& cell = cells[f][a];
      cell.error_mean = error_stats.mean;
      cell.error_std = error_stats.stddev;
      cell.seconds_mean = time_stats.mean;
      cell.ran = true;
    }
  }

  std::vector<std::string> row_labels;
  for (double fraction : fractions) {
    row_labels.push_back(FormatDouble(100.0 * fraction, 0) + "%");
  }
  PrintSweepTables("20Newsgroups-like", row_labels, algorithms, cells);
  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  std::cout << "\n== Shape checks vs the paper ==\n";
  bool ok = true;
  ok &= ShapeCheck(!cells[0][0].ran || cells.back()[0].ran == false,
                   "LDA drops out at larger training fractions (Table IX)");
  ok &= ShapeCheck(!cells.back()[1].ran,
                   "RLDA infeasible at every size on 26214 features");
  ok &= ShapeCheck(cells.back()[2].ran,
                   "SRDA runs at every training fraction (Table IX)");
  if (cells[0][0].ran) {
    ok &= ShapeCheck(
        std::abs(cells[0][2].error_mean - cells[0][0].error_mean) <= 4.0,
        "SRDA comparable to LDA at 5% (Table IX: 27.3 vs 28.0)");
    ok &= ShapeCheck(cells[0][2].seconds_mean < cells[0][0].seconds_mean,
                     "SRDA much faster than LDA (Table X: 16.5 vs 61.8)");
  }
  if (cells[0][3].ran) {
    ok &= ShapeCheck(cells[0][2].error_mean < cells[0][3].error_mean,
                     "SRDA more accurate than IDR/QR (Table IX)");
  }
  ok &= ShapeCheck(
      cells.back()[2].error_mean < cells[0][2].error_mean,
      "SRDA error falls with more training data (Figure 4 left)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
