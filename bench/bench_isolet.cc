// Reproduces Tables V & VI and Figure 2: error rate and training time on the
// Isolet-like spoken-letter dataset for LDA / RLDA / SRDA / IDR-QR.
//
// Pass --full for the paper-scale profile (617 features, 6 training sizes,
// 10 splits).

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "dataset/spoken_letter_generator.h"

namespace srda {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchObservability obs(argc, argv);
  const bool full = HasFlag(argc, argv, "--full");
  const bool smoke = HasFlag(argc, argv, "--smoke");

  SpokenLetterGeneratorOptions options;
  options.num_classes = 26;
  options.examples_per_class = smoke ? 8 : (full ? 240 : 130);
  options.num_features = smoke ? 60 : (full ? 617 : 200);
  const std::vector<int> train_sizes =
      smoke ? std::vector<int>{4}
            : (full ? std::vector<int>{20, 30, 50, 70, 90, 110}
                    : std::vector<int>{20, 50, 110});
  const int num_splits = smoke ? 1 : (full ? 10 : 3);

  std::cout << "Experiment: Tables V & VI / Figure 2 (Isolet-like)\n"
            << "Profile: "
            << (smoke ? "smoke (tiny sizes, no checks)"
                      : (full ? "full" : "small (use --full)"))
            << "  m=" << options.num_classes * options.examples_per_class
            << " n=" << options.num_features << " c=" << options.num_classes
            << " splits=" << num_splits << "\n";

  const DenseDataset dataset = GenerateSpokenLetterDataset(options);
  const std::vector<Algorithm> algorithms = {
      Algorithm::kLda, Algorithm::kRlda, Algorithm::kSrda,
      Algorithm::kIdrQr};
  const auto cells = RunCountSweep(dataset, train_sizes, algorithms,
                                   num_splits, /*seed=*/202, "Isolet-like");
  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  std::cout << "\n== Shape checks vs the paper ==\n";
  bool ok = true;
  const size_t first = 0;
  const size_t last = cells.size() - 1;
  ok &= ShapeCheck(
      cells[first][0].error_mean > cells[first][1].error_mean,
      "plain LDA much worse than RLDA at 20/class (Table V: 54.1 vs 9.4)");
  ok &= ShapeCheck(
      cells[first][2].error_mean < cells[first][0].error_mean,
      "SRDA beats plain LDA at the smallest size (Table V)");
  ok &= ShapeCheck(
      std::fabs(cells[last][2].error_mean - cells[last][1].error_mean) < 3.0,
      "SRDA tracks RLDA at the largest size (Table V: 6.6 vs 6.5)");
  ok &= ShapeCheck(
      cells[last][2].error_mean < cells[last][3].error_mean,
      "SRDA beats IDR/QR (Table V)");
  ok &= ShapeCheck(
      cells[last][2].seconds_mean < cells[last][0].seconds_mean,
      "SRDA trains faster than LDA (Table VI)");
  ok &= ShapeCheck(
      cells[last][0].error_mean < cells[first][0].error_mean,
      "LDA error falls as training size grows (Figure 2 left)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
