// Benchmarks for the Section-III extensions (beyond the paper's own tables,
// mirroring the evaluations of its follow-up references):
//
//  A. Kernel: KSRDA vs exact KDA (the comparison of reference [14]) — same
//     accuracy, KSRDA avoids forming K*K so it trains several times faster.
//  B. Incremental: streaming SRDA updates vs retraining from scratch after
//     every batch of arrivals — the setting that motivates IDR/QR.

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "classify/classifiers.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/incremental_srda.h"
#include "core/kda.h"
#include "core/ksrda.h"
#include "core/srda.h"
#include "dataset/spoken_letter_generator.h"
#include "dataset/split.h"

namespace srda {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchObservability obs(argc, argv);
  const bool full = HasFlag(argc, argv, "--full");
  const bool smoke = HasFlag(argc, argv, "--smoke");
  std::cout << "Experiment: extension benchmarks (kernel + incremental)\n"
            << "Profile: "
            << (smoke ? "smoke (tiny sizes, no checks)"
                      : (full ? "full" : "small (use --full)"))
            << "\n";

  // ----- A: KSRDA vs exact KDA -----
  std::cout << "\n== A. Kernel SRDA vs exact KDA (reference [14]) ==\n";
  SpokenLetterGeneratorOptions data_options;
  data_options.num_classes = 10;
  data_options.examples_per_class = smoke ? 16 : (full ? 120 : 60);
  data_options.num_features = smoke ? 40 : 80;
  data_options.output_scale = 1.0;
  const DenseDataset data = GenerateSpokenLetterDataset(data_options);
  Rng rng(31);
  const TrainTestSplit split = StratifiedSplitByCount(
      data.labels, 10, data_options.examples_per_class / 2, &rng);
  const DenseDataset train = Subset(data, split.train);
  const DenseDataset test = Subset(data, split.test);
  const double gamma = RbfGammaMedianHeuristic(train.features);
  auto kernel = std::make_shared<RbfKernel>(gamma);

  double kda_seconds = 0.0;
  double kda_error = 0.0;
  {
    Stopwatch watch;
    const KdaModel model = FitKda(train.features, train.labels, 10, kernel);
    kda_seconds = watch.ElapsedSeconds();
    CentroidClassifier classifier;
    classifier.Fit(model.Transform(train.features), train.labels, 10);
    kda_error = 100.0 * ErrorRate(
        classifier.Predict(model.Transform(test.features)), test.labels);
  }
  double ksrda_seconds = 0.0;
  double ksrda_error = 0.0;
  {
    Stopwatch watch;
    const KsrdaModel model =
        FitKsrda(train.features, train.labels, 10, kernel);
    ksrda_seconds = watch.ElapsedSeconds();
    CentroidClassifier classifier;
    classifier.Fit(model.Transform(train.features), train.labels, 10);
    ksrda_error = 100.0 * ErrorRate(
        classifier.Predict(model.Transform(test.features)), test.labels);
  }
  TablePrinter kernel_table({"method", "test error %", "train s"});
  kernel_table.AddRow({"exact KDA (O(m^3) K*K)", FormatDouble(kda_error, 2),
                       FormatDouble(kda_seconds, 4)});
  kernel_table.AddRow({"KSRDA (regression)", FormatDouble(ksrda_error, 2),
                       FormatDouble(ksrda_seconds, 4)});
  kernel_table.Print(std::cout);

  // ----- B: incremental vs retrain-from-scratch -----
  std::cout << "\n== B. Incremental SRDA vs batch retraining ==\n";
  const int n = data.features.cols();
  const int batch = smoke ? 20 : 50;
  // Shuffled arrival order so every class appears early in the stream.
  std::vector<int> arrival;
  for (int i = 0; i < train.features.rows(); ++i) arrival.push_back(i);
  rng.Shuffle(&arrival);
  // First prefix length at which every class has arrived.
  int warmup = 0;
  {
    std::vector<int> seen(10, 0);
    int covered = 0;
    for (int i = 0; i < static_cast<int>(arrival.size()); ++i) {
      const int label = train.labels[static_cast<size_t>(arrival[i])];
      if (seen[static_cast<size_t>(label)]++ == 0) ++covered;
      if (covered == 10) {
        warmup = i + 1;
        break;
      }
    }
  }
  double incremental_seconds = 0.0;
  double batch_seconds = 0.0;
  {
    IncrementalSrda trainer(n, 10, 1.0);
    Stopwatch watch;
    for (int i = 0; i < static_cast<int>(arrival.size()); ++i) {
      trainer.AddSample(train.features.Row(arrival[i]),
                        train.labels[static_cast<size_t>(arrival[i])]);
      if (i + 1 >= warmup && (i + 1) % batch == 0) trainer.Solve();
    }
    incremental_seconds = watch.ElapsedSeconds();
  }
  {
    Stopwatch watch;
    for (int upto = batch; upto <= static_cast<int>(arrival.size());
         upto += batch) {
      if (upto < warmup) continue;
      std::vector<int> indices(arrival.begin(), arrival.begin() + upto);
      const DenseDataset prefix = Subset(train, indices);
      // Retrain on everything seen so far (what a non-incremental trainer
      // must do after each batch of arrivals).
      FitSrda(prefix.features, prefix.labels, 10);
    }
    batch_seconds = watch.ElapsedSeconds();
  }
  TablePrinter stream_table({"strategy", "total s (resolve every 50)"});
  stream_table.AddRow({"incremental (rank-1 updates)",
                       FormatDouble(incremental_seconds, 4)});
  stream_table.AddRow({"retrain from scratch",
                       FormatDouble(batch_seconds, 4)});
  stream_table.Print(std::cout);

  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  std::cout << "\n== Shape checks ==\n";
  bool ok = true;
  ok &= ShapeCheck(std::abs(kda_error - ksrda_error) < 3.0,
                   "KSRDA matches exact KDA accuracy (reference [14])");
  ok &= ShapeCheck(ksrda_seconds < kda_seconds,
                   "KSRDA trains faster than exact KDA");
  ok &= ShapeCheck(incremental_seconds < batch_seconds,
                   "incremental updates beat retraining from scratch");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
