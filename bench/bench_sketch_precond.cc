// Sketch-preconditioned LSQR vs. plain LSQR on the ill-conditioned sparse
// text workload — the regime "Randomized Iterative Algorithms for Fisher
// Discriminant Analysis" targets: heavy topic overlap and contamination
// drive the term-term Gram's condition number up, so plain LSQR needs many
// iterations to reach a tight tolerance while the sketch-preconditioned
// operator is near an isometry.
//
// Three stages, all against one exact normal-equations reference:
//   plain LSQR        — generous iteration budget, tight tolerances.
//   preconditioned    — same budget/tolerances at two sketch sizes (2n and
//                       4n rows); must converge in >= 2x fewer iterations
//                       to the same solution.
//   pure sketch-solve — zero iterations, reported with its computed error
//                       bound (no accuracy claim beyond the bound holding).
// Plus a 1-vs-4-thread preconditioned pair, compared bitwise.
//
// Pass --smoke for a seconds-long run without shape checks.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "dataset/text_generator.h"
#include "linalg/linear_operator.h"
#include "matrix/blas.h"
#include "solver/ridge_solver.h"

namespace srda {
namespace bench {
namespace {

struct SolveRun {
  std::string label;
  int sketch_rows = 0;  // 0 = plain
  int iterations = 0;
  double seconds = 0.0;
  double max_diff_vs_exact = 0.0;
  bool converged = false;
};

Matrix RandomResponses(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng.NextGaussian();
  }
  return m;
}

SolveRun RunLsqr(const SparseMatrix& features, const Matrix& responses,
                 double alpha, int sketch_rows, const Matrix& exact,
                 const std::string& label) {
  const SparseOperator data(&features);
  RidgeSolver solver(&data);
  if (sketch_rows > 0) {
    SketchConfig config;
    config.mode = SketchMode::kPrecondition;
    config.sketch_rows = sketch_rows;
    solver.SetSketch(config);
  }
  RidgeSolveOptions options;
  options.method = RidgeMethod::kLsqr;
  options.lsqr_iterations = 500;
  options.lsqr_atol = 1e-8;
  options.lsqr_btol = 1e-8;
  Stopwatch watch;
  const RidgeSolution solution = solver.Solve(responses, alpha, options);
  SolveRun run;
  run.seconds = watch.ElapsedSeconds();
  SRDA_CHECK(solution.ok) << label << " solve failed";
  run.label = label;
  run.sketch_rows = sketch_rows;
  run.iterations = solution.total_lsqr_iterations;
  run.max_diff_vs_exact = MaxAbsDiff(solution.coefficients, exact);
  run.converged = true;
  for (const RidgeRhsDiagnostics& diag : solution.lsqr) {
    run.converged = run.converged && diag.converged;
  }
  return run;
}

int Main(int argc, char** argv) {
  BenchObservability obs(argc, argv);
  const bool smoke = HasFlag(argc, argv, "--smoke");

  // Ill-conditioned text corpus: small vocabulary relative to the document
  // count and heavy cross-topic contamination (the generator's default)
  // make the centered term Gram poorly conditioned at small alpha.
  TextGeneratorOptions text;
  text.num_topics = smoke ? 4 : 6;
  text.docs_per_topic = smoke ? 30 : 500;
  text.vocabulary_size = smoke ? 120 : 600;
  text.topic_vocabulary_size = smoke ? 30 : 150;
  text.mean_document_length = smoke ? 50.0 : 120.0;
  text.seed = 17;
  const SparseDataset corpus = GenerateTextDataset(text);
  const int m = corpus.features.rows();
  const int n = corpus.features.cols();
  const double alpha = 1e-3;
  const int num_rhs = smoke ? 2 : 5;
  const Matrix responses = RandomResponses(m, num_rhs, 23);

  std::cout << "Experiment: sketch-preconditioned LSQR vs. plain\n"
            << "Profile: " << (smoke ? "smoke (tiny sizes, no checks)" : "full")
            << "\n"
            << "Dataset: " << m << " docs x " << n << " terms, "
            << corpus.features.NumNonZeros() << " nnz, alpha " << alpha
            << ", " << num_rhs << " right-hand sides\n";

  // Exact reference: densify once and solve the normal equations (n is
  // small by construction; the iterative paths never densify).
  const Matrix dense = corpus.features.ToDense();
  RidgeSolver exact_solver(&dense);
  const RidgeSolution exact = exact_solver.Solve(responses, alpha);
  SRDA_CHECK(exact.ok) << "exact solve failed";

  std::vector<SolveRun> runs;
  runs.push_back(
      RunLsqr(corpus.features, responses, alpha, 0, exact.coefficients,
              "plain"));
  for (int factor : {2, 4}) {
    const int sketch_rows = std::min(m, factor * n);
    runs.push_back(RunLsqr(corpus.features, responses, alpha, sketch_rows,
                           exact.coefficients,
                           "precond s=" + std::to_string(factor) + "n"));
  }

  // Pure sketch-solve: zero iterations, rigorous error bound.
  double sketch_solve_seconds = 0.0;
  double sketch_solve_bound = 0.0;
  double sketch_solve_diff = 0.0;
  {
    const SparseOperator data(&corpus.features);
    RidgeSolver solver(&data);
    SketchConfig config;
    config.mode = SketchMode::kSolve;
    config.sketch_rows = std::min(m, 4 * n);
    solver.SetSketch(config);
    Stopwatch watch;
    const RidgeSolution solution = solver.Solve(responses, alpha);
    sketch_solve_seconds = watch.ElapsedSeconds();
    SRDA_CHECK(solution.ok) << "sketch-solve failed";
    for (double bound : solution.sketch_error_bounds) {
      sketch_solve_bound = std::max(sketch_solve_bound, bound);
    }
    sketch_solve_diff = MaxAbsDiff(solution.coefficients, exact.coefficients);
  }

  // Thread determinism: the preconditioned fit is bitwise identical at any
  // thread count (fixed sketch seed).
  const int saved_threads = GlobalThreadCount();
  Matrix per_thread[2];
  for (int pass = 0; pass < 2; ++pass) {
    SetGlobalThreadCount(pass == 0 ? 1 : 4);
    const SparseOperator data(&corpus.features);
    RidgeSolver solver(&data);
    SketchConfig config;
    config.mode = SketchMode::kPrecondition;
    config.sketch_rows = std::min(m, 2 * n);
    solver.SetSketch(config);
    RidgeSolveOptions options;
    options.method = RidgeMethod::kLsqr;
    options.lsqr_iterations = 500;
    options.lsqr_atol = 1e-8;
    options.lsqr_btol = 1e-8;
    const RidgeSolution solution = solver.Solve(responses, alpha, options);
    SRDA_CHECK(solution.ok);
    per_thread[pass] = solution.coefficients;
  }
  SetGlobalThreadCount(saved_threads);
  const bool thread_bitwise = MaxAbsDiff(per_thread[0], per_thread[1]) == 0.0;

  TablePrinter table({"solve", "sketch rows", "iterations", "seconds",
                      "|coeff - exact|", "converged"});
  for (const SolveRun& run : runs) {
    table.AddRow({run.label,
                  run.sketch_rows > 0 ? std::to_string(run.sketch_rows) : "-",
                  std::to_string(run.iterations), FormatDouble(run.seconds, 3),
                  FormatDouble(run.max_diff_vs_exact, 8),
                  run.converged ? "yes" : "NO"});
  }
  char sketch_row[128];
  std::snprintf(sketch_row, sizeof(sketch_row), "%.3g (bound %.3g)",
                sketch_solve_diff, sketch_solve_bound);
  table.AddRow({"sketch-solve", std::to_string(std::min(m, 4 * n)), "0",
                FormatDouble(sketch_solve_seconds, 3), sketch_row, "-"});
  table.Print(std::cout);
  std::cout << "1-vs-4-thread preconditioned fits bitwise identical: "
            << (thread_bitwise ? "yes" : "NO") << "\n";

  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  std::ofstream json("BENCH_sketch_precond.json");
  json << "{\n  \"experiment\": \"sketch_preconditioned_lsqr\",\n"
       << "  \"documents\": " << m << ",\n"
       << "  \"terms\": " << n << ",\n"
       << "  \"nnz\": " << corpus.features.NumNonZeros() << ",\n"
       << "  \"alpha\": " << alpha << ",\n"
       << "  \"num_rhs\": " << num_rhs << ",\n"
       << "  \"lsqr_tolerance\": 1e-8,\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const SolveRun& run = runs[i];
    json << "    {\"solve\": \"" << run.label
         << "\", \"sketch_rows\": " << run.sketch_rows
         << ", \"iterations\": " << run.iterations
         << ", \"seconds\": " << run.seconds
         << ", \"max_diff_vs_exact\": " << run.max_diff_vs_exact
         << ", \"converged\": " << (run.converged ? "true" : "false") << "}"
         << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"sketch_solve\": {\"sketch_rows\": " << std::min(m, 4 * n)
       << ", \"seconds\": " << sketch_solve_seconds
       << ", \"max_diff_vs_exact\": " << sketch_solve_diff
       << ", \"max_error_bound\": " << sketch_solve_bound << "},\n"
       << "  \"thread_bitwise_identical\": "
       << (thread_bitwise ? "true" : "false") << "\n}\n";
  std::cout << "wrote BENCH_sketch_precond.json\n";

  bool ok = true;
  ok &= ShapeCheck(runs[0].converged && runs[1].converged && runs[2].converged,
                   "all LSQR runs reach the 1e-8 stopping tolerance inside "
                   "the iteration budget");
  for (size_t i = 1; i < runs.size(); ++i) {
    ok &= ShapeCheck(2 * runs[i].iterations <= runs[0].iterations,
                     runs[i].label + " needs >= 2x fewer iterations than "
                                     "plain LSQR at the same tolerance");
  }
  ok &= ShapeCheck(runs[1].max_diff_vs_exact < 1e-4 &&
                       runs[2].max_diff_vs_exact < 1e-4,
                   "preconditioned solutions match the exact normal-equations "
                   "path within 1e-4");
  ok &= ShapeCheck(sketch_solve_diff <= sketch_solve_bound,
                   "pure sketch-solve error is within its computed bound");
  ok &= ShapeCheck(thread_bitwise,
                   "preconditioned fit bitwise identical at 1 vs 4 threads");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
