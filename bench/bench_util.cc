#include "bench/bench_util.h"

#include <cmath>
#include <cstdio>
#include <iostream>

#include "classify/classifiers.h"
#include "common/check.h"
#include "common/flops.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "core/idr_qr.h"
#include "core/lda.h"
#include "core/rlda.h"
#include "core/srda.h"
#include "dataset/split.h"

namespace srda {
namespace bench {

std::string AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kLda:
      return "LDA";
    case Algorithm::kRlda:
      return "RLDA";
    case Algorithm::kSrda:
      return "SRDA";
    case Algorithm::kIdrQr:
      return "IDR/QR";
  }
  return "unknown";
}

namespace {

double Evaluate(const LinearEmbedding& embedding, const DenseDataset& train,
                const DenseDataset& test) {
  const Matrix train_embedded = embedding.Transform(train.features);
  const Matrix test_embedded = embedding.Transform(test.features);
  CentroidClassifier classifier;
  classifier.Fit(train_embedded, train.labels, train.num_classes);
  return 100.0 * ErrorRate(classifier.Predict(test_embedded), test.labels);
}

}  // namespace

RunResult RunDense(Algorithm algorithm, const DenseDataset& train,
                   const DenseDataset& test, double alpha) {
  RunResult result;
  result.num_threads = GlobalThreadCount();
  const double flops_before = FlopCount();
  Stopwatch watch;
  LinearEmbedding embedding;
  switch (algorithm) {
    case Algorithm::kLda: {
      const LdaModel model =
          FitLda(train.features, train.labels, train.num_classes);
      SRDA_CHECK(model.converged) << "LDA failed to converge";
      embedding = model.embedding;
      break;
    }
    case Algorithm::kRlda: {
      RldaOptions options;
      options.alpha = alpha;
      const RldaModel model =
          FitRlda(train.features, train.labels, train.num_classes, options);
      SRDA_CHECK(model.converged) << "RLDA failed to converge";
      embedding = model.embedding;
      break;
    }
    case Algorithm::kSrda: {
      SrdaOptions options;
      options.alpha = alpha;
      const SrdaModel model =
          FitSrda(train.features, train.labels, train.num_classes, options);
      SRDA_CHECK(model.converged) << "SRDA failed to converge";
      embedding = model.embedding;
      break;
    }
    case Algorithm::kIdrQr: {
      const IdrQrModel model =
          FitIdrQr(train.features, train.labels, train.num_classes);
      SRDA_CHECK(model.converged) << "IDR/QR failed to converge";
      embedding = model.embedding;
      break;
    }
  }
  result.seconds = watch.ElapsedSeconds();
  if (result.seconds > 0.0) {
    result.gflops = (FlopCount() - flops_before) / result.seconds / 1e9;
  }
  result.error_percent = Evaluate(embedding, train, test);
  return result;
}

RunResult RunSparseSrda(const SparseDataset& train, const SparseDataset& test,
                        double alpha, int lsqr_iterations) {
  RunResult result;
  result.num_threads = GlobalThreadCount();
  const double flops_before = FlopCount();
  Stopwatch watch;
  SrdaOptions options;
  options.alpha = alpha;
  options.solver = SrdaSolver::kLsqr;
  options.lsqr_iterations = lsqr_iterations;
  const SrdaModel model =
      FitSrda(train.features, train.labels, train.num_classes, options);
  SRDA_CHECK(model.converged) << "sparse SRDA failed to converge";
  result.seconds = watch.ElapsedSeconds();
  if (result.seconds > 0.0) {
    result.gflops = (FlopCount() - flops_before) / result.seconds / 1e9;
  }

  const Matrix train_embedded = model.embedding.Transform(train.features);
  const Matrix test_embedded = model.embedding.Transform(test.features);
  CentroidClassifier classifier;
  classifier.Fit(train_embedded, train.labels, train.num_classes);
  result.error_percent =
      100.0 * ErrorRate(classifier.Predict(test_embedded), test.labels);
  return result;
}

DenseDataset Densify(const SparseDataset& dataset) {
  DenseDataset dense;
  dense.features = dataset.features.ToDense();
  dense.labels = dataset.labels;
  dense.num_classes = dataset.num_classes;
  return dense;
}

std::vector<std::vector<SweepCell>> RunCountSweep(
    const DenseDataset& dataset, const std::vector<int>& train_sizes,
    const std::vector<Algorithm>& algorithms, int num_splits,
    uint64_t seed, const std::string& dataset_name) {
  Rng rng(seed);
  std::vector<std::vector<SweepCell>> cells(
      train_sizes.size(), std::vector<SweepCell>(algorithms.size()));

  for (size_t s = 0; s < train_sizes.size(); ++s) {
    std::vector<std::vector<double>> errors(algorithms.size());
    std::vector<std::vector<double>> times(algorithms.size());
    std::vector<std::vector<double>> gflops(algorithms.size());
    for (int split_index = 0; split_index < num_splits; ++split_index) {
      const TrainTestSplit split = StratifiedSplitByCount(
          dataset.labels, dataset.num_classes, train_sizes[s], &rng);
      const DenseDataset train = Subset(dataset, split.train);
      const DenseDataset test = Subset(dataset, split.test);
      for (size_t a = 0; a < algorithms.size(); ++a) {
        const RunResult run = RunDense(algorithms[a], train, test);
        errors[a].push_back(run.error_percent);
        times[a].push_back(run.seconds);
        gflops[a].push_back(run.gflops);
      }
    }
    for (size_t a = 0; a < algorithms.size(); ++a) {
      const MeanStd error_stats = ComputeMeanStd(errors[a]);
      const MeanStd time_stats = ComputeMeanStd(times[a]);
      cells[s][a].error_mean = error_stats.mean;
      cells[s][a].error_std = error_stats.stddev;
      cells[s][a].seconds_mean = time_stats.mean;
      cells[s][a].ran = true;
      cells[s][a].gflops_mean = ComputeMeanStd(gflops[a]).mean;
    }
  }

  std::vector<std::string> row_labels;
  for (int size : train_sizes) {
    row_labels.push_back(std::to_string(size) + " x " +
                         std::to_string(dataset.num_classes));
  }
  PrintSweepTables(dataset_name, row_labels, algorithms, cells);
  return cells;
}

void PrintSweepTables(const std::string& dataset_name,
                      const std::vector<std::string>& row_labels,
                      const std::vector<Algorithm>& algorithms,
                      const std::vector<std::vector<SweepCell>>& cells) {
  std::vector<std::string> header = {"Train Size"};
  for (Algorithm algorithm : algorithms) {
    header.push_back(AlgorithmName(algorithm));
  }

  std::cout << "\n== Classification error rates on " << dataset_name
            << " (mean +- std-dev, %) ==\n";
  TablePrinter error_table(header);
  for (size_t s = 0; s < cells.size(); ++s) {
    std::vector<std::string> row = {row_labels[s]};
    for (const SweepCell& cell : cells[s]) {
      row.push_back(cell.ran
                        ? FormatMeanStd(cell.error_mean, cell.error_std)
                        : "-");
    }
    error_table.AddRow(row);
  }
  error_table.Print(std::cout);

  std::cout << "\n== Computational time on " << dataset_name << " (s) ==\n";
  TablePrinter time_table(header);
  for (size_t s = 0; s < cells.size(); ++s) {
    std::vector<std::string> row = {row_labels[s]};
    for (const SweepCell& cell : cells[s]) {
      row.push_back(cell.ran ? FormatDouble(cell.seconds_mean, 4) : "-");
    }
    time_table.AddRow(row);
  }
  time_table.Print(std::cout);

  // GFLOP/s from the runtime flop counter; only printed when at least one
  // cell recorded a rate (sub-resolution timings leave it at zero).
  bool any_gflops = false;
  for (const auto& row : cells) {
    for (const SweepCell& cell : row) {
      any_gflops = any_gflops || (cell.ran && cell.gflops_mean > 0.0);
    }
  }
  if (any_gflops) {
    std::cout << "\n== Training throughput on " << dataset_name
              << " (GFLOP/s) ==\n";
    TablePrinter gflops_table(header);
    for (size_t s = 0; s < cells.size(); ++s) {
      std::vector<std::string> row = {row_labels[s]};
      for (const SweepCell& cell : cells[s]) {
        row.push_back(cell.ran ? FormatGflops(cell.gflops_mean, 2) : "-");
      }
      gflops_table.AddRow(row);
    }
    gflops_table.Print(std::cout);
  }

  // Figure series: one line per algorithm, usable to regenerate the plots.
  std::cout << "\n== Figure series (error %, then time s, per algorithm) ==\n";
  for (size_t a = 0; a < algorithms.size(); ++a) {
    std::cout << AlgorithmName(algorithms[a]) << " error:";
    for (const auto& row : cells) {
      std::cout << " "
                << (row[a].ran ? FormatDouble(row[a].error_mean, 2) : "-");
    }
    std::cout << "\n" << AlgorithmName(algorithms[a]) << " time:";
    for (const auto& row : cells) {
      std::cout << " "
                << (row[a].ran ? FormatDouble(row[a].seconds_mean, 4) : "-");
    }
    std::cout << "\n";
  }
}

bool ShapeCheck(bool condition, const std::string& description) {
  std::cout << (condition ? "[PASS] " : "[FAIL] ") << description << "\n";
  return condition;
}

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

std::string GetFlagValue(int argc, char** argv, const std::string& flag) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.compare(0, prefix.size(), prefix) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return "";
}

std::string FormatRatio(double numer, double denom, int digits) {
  if (!(denom > 0.0)) return "-";
  const double ratio = numer / denom;
  if (!std::isfinite(ratio)) return "-";
  return FormatDouble(ratio, digits);
}

std::string FormatGflops(double gflops, int digits) {
  if (!(gflops > 0.0) || !std::isfinite(gflops)) return "-";
  return FormatDouble(gflops, digits);
}

BenchObservability::BenchObservability(int argc, char** argv) {
  trace_path_ = GetFlagValue(argc, argv, "--trace-out");
  active_ = !trace_path_.empty() || HasFlag(argc, argv, "--metrics") ||
            TraceEnabled();
  if (!active_) return;
  TraceRecorder::Global().SetEnabled(true);
  TraceRecorder::Global().Clear();
  MetricsRegistry::Global().ResetAll();
}

BenchObservability::~BenchObservability() {
  if (!active_) return;
  PrintRunSummary(std::cout);
  if (trace_path_.empty()) return;
  if (TraceRecorder::Global().WriteJsonFile(trace_path_)) {
    std::cout << "wrote trace to " << trace_path_ << "\n";
  } else {
    std::cout << "failed to write trace to " << trace_path_ << "\n";
  }
}

}  // namespace bench
}  // namespace srda
