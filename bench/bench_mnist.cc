// Reproduces Tables VII & VIII and Figure 3: error rate and training time on
// the MNIST-like digit dataset for LDA / RLDA / SRDA / IDR-QR.
//
// Pass --full for the paper-scale profile (28x28 images, 6 training sizes,
// 10 splits).

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "dataset/digit_generator.h"

namespace srda {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchObservability obs(argc, argv);
  const bool full = HasFlag(argc, argv, "--full");
  const bool smoke = HasFlag(argc, argv, "--smoke");

  DigitGeneratorOptions options;
  options.examples_per_class = smoke ? 12 : (full ? 400 : 250);
  options.image_size = smoke ? 8 : (full ? 28 : 16);
  const std::vector<int> train_sizes =
      smoke ? std::vector<int>{6}
            : (full ? std::vector<int>{30, 50, 70, 100, 130, 170}
                    : std::vector<int>{30, 100, 170});
  const int num_splits = smoke ? 1 : (full ? 10 : 3);

  std::cout << "Experiment: Tables VII & VIII / Figure 3 (MNIST-like)\n"
            << "Profile: "
            << (smoke ? "smoke (tiny sizes, no checks)"
                      : (full ? "full" : "small (use --full)"))
            << "  m=" << 10 * options.examples_per_class
            << " n=" << options.image_size * options.image_size
            << " c=10 splits=" << num_splits << "\n";

  const DenseDataset dataset = GenerateDigitDataset(options);
  const std::vector<Algorithm> algorithms = {
      Algorithm::kLda, Algorithm::kRlda, Algorithm::kSrda,
      Algorithm::kIdrQr};
  const auto cells = RunCountSweep(dataset, train_sizes, algorithms,
                                   num_splits, /*seed=*/303, "MNIST-like");
  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  std::cout << "\n== Shape checks vs the paper ==\n";
  bool ok = true;
  const size_t first = 0;
  const size_t last = cells.size() - 1;
  ok &= ShapeCheck(
      cells[first][0].error_mean > cells[first][2].error_mean,
      "plain LDA worse than SRDA on digits (Table VII: 48.1 vs 23.6)");
  ok &= ShapeCheck(
      cells[last][0].error_mean > cells[last][1].error_mean,
      "plain LDA stays worse than RLDA even at 170/class (Table VII)");
  ok &= ShapeCheck(
      cells[last][2].error_mean < cells[last][3].error_mean + 1.0,
      "SRDA at least matches IDR/QR (Table VII)");
  ok &= ShapeCheck(
      cells[last][2].seconds_mean < cells[last][0].seconds_mean,
      "SRDA trains faster than LDA (Table VIII)");
  ok &= ShapeCheck(
      cells[last][2].seconds_mean < cells[last][1].seconds_mean,
      "SRDA trains faster than RLDA (Table VIII)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
