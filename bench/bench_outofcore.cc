// Out-of-core sharded training: streams the synthetic 20Newsgroups-style
// sparse workload from a LibSVM file in bounded-memory shards and proves
// the streamed SRDA fit is BITWISE identical to the in-RAM fit — at every
// shard size and thread count — while peak resident dataset memory stays
// bounded by the shard size, not the corpus.
//
// Three stages:
//   in-RAM reference  — ReadLibSvmFile + sparse FitSrda (LSQR), the
//                       existing everything-resident path.
//   sharded fits      — RowShardReader -> RidgeSolver shard binding; one
//                       streaming pass over the file per LSQR iteration.
//                       Run at several shard sizes and at 1 vs. 4 threads,
//                       each compared bitwise against the reference.
//   incremental tail  — dense binary shards bulk-loaded into
//                       IncrementalSrda::AddShard, then an online AddSample
//                       tail; agrees with the all-AddSample stream to
//                       solver tolerance (the blocked rank-k update
//                       reassociates rotations, so this one is not bitwise).
//
// Pass --smoke for a seconds-long run without shape checks.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/incremental_srda.h"
#include "core/srda.h"
#include "dataset/spoken_letter_generator.h"
#include "dataset/text_generator.h"
#include "io/dataset_io.h"
#include "io/row_shard_reader.h"
#include "matrix/blas.h"
#include "solver/ridge_solver.h"

namespace srda {
namespace bench {
namespace {

struct ShardedRun {
  int shard_rows = 0;
  int num_threads = 0;
  double seconds = 0.0;
  int64_t bytes_streamed = 0;
  int64_t peak_shard_bytes = 0;
  bool bitwise_identical = false;
};

// One sharded fit through the file; bitwise-compared to the reference.
ShardedRun RunSharded(const std::string& path, int num_features,
                      int shard_rows, int num_threads,
                      const SrdaOptions& options,
                      const SrdaModel& reference) {
  const int saved_threads = GlobalThreadCount();
  SetGlobalThreadCount(num_threads);
  RowShardReaderOptions reader_options;
  reader_options.shard_rows = shard_rows;
  reader_options.num_features = num_features;
  RowShardReader reader(path, RowStreamFormat::kLibSvm, reader_options);
  RidgeSolver solver(&reader);
  Stopwatch watch;
  const SrdaModel model =
      FitSrda(&solver, reader.labels(), reader.num_classes(), options);
  ShardedRun run;
  run.seconds = watch.ElapsedSeconds();
  SetGlobalThreadCount(saved_threads);
  SRDA_CHECK(model.converged) << "sharded SRDA failed";
  run.shard_rows = shard_rows;
  run.num_threads = num_threads;
  run.bytes_streamed = reader.bytes_streamed();
  run.peak_shard_bytes = reader.peak_shard_bytes();
  run.bitwise_identical =
      MaxAbsDiff(model.embedding.projection(),
                 reference.embedding.projection()) == 0.0 &&
      MaxAbsDiff(model.embedding.bias(), reference.embedding.bias()) == 0.0;
  return run;
}

int Main(int argc, char** argv) {
  BenchObservability obs(argc, argv);
  const bool smoke = HasFlag(argc, argv, "--smoke");

  // Reduced 20news-style corpus: large enough that shards are a small
  // fraction of the file, small enough that ~30 streaming re-parses (one
  // per LSQR operator pass) stay in seconds.
  TextGeneratorOptions text;
  text.num_topics = smoke ? 4 : 10;
  text.docs_per_topic = smoke ? 25 : 200;
  text.vocabulary_size = smoke ? 400 : 4000;
  text.topic_vocabulary_size = smoke ? 40 : 300;
  const SparseDataset generated = GenerateTextDataset(text);
  const int m = generated.features.rows();
  const int n = generated.features.cols();
  const int64_t nnz = generated.features.NumNonZeros();
  const int64_t dataset_bytes = nnz * 12 + static_cast<int64_t>(m + 1) * 8;

  const std::string path = "outofcore_bench.libsvm";
  WriteLibSvmFile(generated, path);

  std::cout << "Experiment: out-of-core sharded SRDA vs. in-RAM\n"
            << "Profile: " << (smoke ? "smoke (tiny sizes, no checks)" : "full")
            << "\n"
            << "Dataset: " << m << " docs x " << n << " terms, " << nnz
            << " nnz (" << dataset_bytes / 1024 << " KiB resident in RAM)\n";

  SrdaOptions options;
  options.alpha = 1.0;
  options.solver = SrdaSolver::kLsqr;
  options.lsqr_iterations = 15;

  // In-RAM reference: load the same file the shards stream from, so both
  // paths see identical bits.
  const SparseDataset inram = ReadLibSvmFile(path, n);
  Stopwatch inram_watch;
  const SrdaModel reference =
      FitSrda(inram.features, inram.labels, inram.num_classes, options);
  const double inram_seconds = inram_watch.ElapsedSeconds();
  SRDA_CHECK(reference.converged) << "in-RAM SRDA failed";

  // Shard sizes on both sides of the 512-row transpose chunk grid, plus a
  // 1-vs-4-thread pair at a fixed size.
  std::vector<ShardedRun> runs;
  const std::vector<int> shard_sizes =
      smoke ? std::vector<int>{16, 64} : std::vector<int>{64, 317, 997};
  for (int shard_rows : shard_sizes) {
    runs.push_back(RunSharded(path, n, shard_rows, GlobalThreadCount(),
                              options, reference));
  }
  const int threads_shard = shard_sizes[shard_sizes.size() / 2];
  for (int num_threads : {1, 4}) {
    runs.push_back(
        RunSharded(path, n, threads_shard, num_threads, options, reference));
  }

  TablePrinter table(
      {"fit", "shard rows", "threads", "seconds", "peak shard KiB", "bitwise"});
  table.AddRow({"in-RAM", "-", std::to_string(GlobalThreadCount()),
                FormatDouble(inram_seconds, 3),
                std::to_string(dataset_bytes / 1024), "-"});
  bool all_bitwise = true;
  int64_t min_peak_shard = dataset_bytes;
  for (const ShardedRun& run : runs) {
    all_bitwise &= run.bitwise_identical;
    min_peak_shard = std::min(min_peak_shard, run.peak_shard_bytes);
    table.AddRow({"sharded", std::to_string(run.shard_rows),
                  std::to_string(run.num_threads),
                  FormatDouble(run.seconds, 3),
                  std::to_string(run.peak_shard_bytes / 1024),
                  run.bitwise_identical ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "each sharded fit streamed " << runs.back().bytes_streamed
            << " bytes; smallest-shard fit peaked at " << min_peak_shard / 1024
            << " KiB resident (" << dataset_bytes / 1024
            << " KiB if in RAM)\n";

  // Incremental tail: bulk-load dense binary shards with AddShard, keep
  // streaming single samples, and compare against the all-AddSample stream.
  SpokenLetterGeneratorOptions dense_options;
  dense_options.examples_per_class = smoke ? 6 : 40;
  dense_options.num_features = smoke ? 24 : 128;
  const DenseDataset dense = GenerateSpokenLetterDataset(dense_options);
  const std::string dense_path = "outofcore_bench.srdb";
  WriteDenseBinaryFile(dense, dense_path);
  const int bulk_rows = dense.features.rows() - dense.num_classes;
  const double incr_alpha = 0.5;

  IncrementalSrda by_shard(dense.features.cols(), dense.num_classes,
                           incr_alpha);
  Stopwatch shard_watch;
  {
    RowShardReaderOptions reader_options;
    reader_options.shard_rows = smoke ? 16 : 128;
    RowShardReader reader(dense_path, RowStreamFormat::kBinary,
                          reader_options);
    RowShard shard;
    while (reader.Next(&shard) && shard.first_row < bulk_rows) {
      const int take =
          std::min(shard.dense->rows(), bulk_rows - shard.first_row);
      Matrix block(take, dense.features.cols());
      std::vector<int> labels(static_cast<size_t>(take));
      for (int i = 0; i < take; ++i) {
        const double* src = shard.dense->RowPtr(i);
        std::copy(src, src + dense.features.cols(), block.RowPtr(i));
        labels[static_cast<size_t>(i)] =
            reader.labels()[static_cast<size_t>(shard.first_row + i)];
      }
      by_shard.AddShard(block, labels);
    }
  }
  const double bulk_seconds = shard_watch.ElapsedSeconds();

  IncrementalSrda by_sample(dense.features.cols(), dense.num_classes,
                            incr_alpha);
  Stopwatch sample_watch;
  for (int i = 0; i < bulk_rows; ++i) {
    Vector row(dense.features.cols());
    for (int j = 0; j < dense.features.cols(); ++j) {
      row[j] = dense.features(i, j);
    }
    by_sample.AddSample(row, dense.labels[static_cast<size_t>(i)]);
  }
  const double sample_seconds = sample_watch.ElapsedSeconds();

  // Online tail on both: the bulk-loaded trainer keeps accepting samples.
  for (int i = bulk_rows; i < dense.features.rows(); ++i) {
    Vector row(dense.features.cols());
    for (int j = 0; j < dense.features.cols(); ++j) {
      row[j] = dense.features(i, j);
    }
    by_shard.AddSample(row, dense.labels[static_cast<size_t>(i)]);
    by_sample.AddSample(row, dense.labels[static_cast<size_t>(i)]);
  }
  SRDA_CHECK(by_shard.ready() && by_sample.ready());
  const LinearEmbedding shard_embedding = by_shard.Solve();
  const LinearEmbedding sample_embedding = by_sample.Solve();
  const double incr_diff = MaxAbsDiff(shard_embedding.projection(),
                                      sample_embedding.projection());
  std::cout << "incremental bulk load: AddShard " << FormatDouble(bulk_seconds, 3)
            << " s vs per-sample " << FormatDouble(sample_seconds, 3)
            << " s; |embedding diff| " << incr_diff << "\n";

  std::remove(path.c_str());
  std::remove(dense_path.c_str());

  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  std::ofstream json("BENCH_outofcore.json");
  json << "{\n  \"experiment\": \"outofcore_sharded_training\",\n"
       << "  \"documents\": " << m << ",\n"
       << "  \"terms\": " << n << ",\n"
       << "  \"nnz\": " << nnz << ",\n"
       << "  \"dataset_resident_bytes\": " << dataset_bytes << ",\n"
       << "  \"inram_seconds\": " << inram_seconds << ",\n"
       << "  \"sharded_runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const ShardedRun& run = runs[i];
    json << "    {\"shard_rows\": " << run.shard_rows
         << ", \"threads\": " << run.num_threads
         << ", \"seconds\": " << run.seconds
         << ", \"bytes_streamed\": " << run.bytes_streamed
         << ", \"peak_shard_bytes\": " << run.peak_shard_bytes
         << ", \"bitwise_identical\": "
         << (run.bitwise_identical ? "true" : "false") << "}"
         << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"incremental_bulk_seconds\": " << bulk_seconds << ",\n"
       << "  \"incremental_per_sample_seconds\": " << sample_seconds << ",\n"
       << "  \"incremental_embedding_diff\": " << incr_diff << "\n}\n";
  std::cout << "wrote BENCH_outofcore.json\n";

  bool ok = true;
  ok &= ShapeCheck(all_bitwise,
                   "sharded fits bitwise identical to in-RAM at every shard "
                   "size and thread count");
  ok &= ShapeCheck(min_peak_shard * 10 <= dataset_bytes,
                   "smallest-shard fit keeps the peak resident shard under "
                   "a tenth of the in-RAM dataset footprint");
  ok &= ShapeCheck(incr_diff <= 1e-8,
                   "bulk AddShard agrees with the per-sample stream within "
                   "1e-8");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
