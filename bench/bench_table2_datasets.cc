// Reproduces Table II: the statistics of the four evaluation datasets.
//
// Prints size (m), dimensionality (n), class count (c) and — for the sparse
// corpus — the average number of non-zero features per sample, side by side
// with the paper's reference values. The full profile generates the
// paper-scale datasets; the default scales them down.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dataset/digit_generator.h"
#include "dataset/face_generator.h"
#include "dataset/spoken_letter_generator.h"
#include "dataset/text_generator.h"

namespace srda {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchObservability obs(argc, argv);
  const bool full = HasFlag(argc, argv, "--full");
  const bool smoke = HasFlag(argc, argv, "--smoke");
  std::cout << "Experiment: Table II (statistics of the data sets)\n"
            << "Profile: "
            << (smoke ? "smoke (tiny sizes, no checks)"
                      : (full ? "full" : "small (use --full)"))
            << "\n\n";

  TablePrinter table({"dataset", "size (m)", "dim (n)", "# classes (c)",
                      "paper m/n/c"});

  {
    FaceGeneratorOptions options;
    options.images_per_subject = smoke ? 4 : (full ? 170 : 40);
    options.image_size = full ? 32 : 16;
    const DenseDataset d = GenerateFaceDataset(options);
    table.AddRow({"PIE-like", std::to_string(d.features.rows()),
                  std::to_string(d.features.cols()),
                  std::to_string(d.num_classes), "11560/1024/68"});
  }
  {
    SpokenLetterGeneratorOptions options;
    options.examples_per_class = smoke ? 8 : (full ? 240 : 130);
    options.num_features = smoke ? 60 : (full ? 617 : 200);
    const DenseDataset d = GenerateSpokenLetterDataset(options);
    table.AddRow({"Isolet-like", std::to_string(d.features.rows()),
                  std::to_string(d.features.cols()),
                  std::to_string(d.num_classes), "6237/617/26"});
  }
  {
    DigitGeneratorOptions options;
    options.examples_per_class = smoke ? 12 : (full ? 400 : 250);
    options.image_size = smoke ? 8 : (full ? 28 : 16);
    const DenseDataset d = GenerateDigitDataset(options);
    table.AddRow({"MNIST-like", std::to_string(d.features.rows()),
                  std::to_string(d.features.cols()),
                  std::to_string(d.num_classes), "4000/784/10"});
  }
  double avg_nnz = 0.0;
  {
    TextGeneratorOptions options;
    options.docs_per_topic = smoke ? 30 : (full ? 947 : 250);
    const SparseDataset d = GenerateTextDataset(options);
    avg_nnz = d.features.AvgNonZerosPerRow();
    table.AddRow({"20News-like", std::to_string(d.features.rows()),
                  std::to_string(d.features.cols()),
                  std::to_string(d.num_classes), "18941/26214/20"});
    table.Print(std::cout);
    std::cout << "\n20News-like sparsity: avg "
              << FormatDouble(avg_nnz, 1)
              << " non-zero terms per document ("
              << FormatDouble(100.0 * avg_nnz / d.features.cols(), 2)
              << "% density)\n";
  }

  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  std::cout << "\n== Shape checks vs the paper ==\n";
  bool ok = true;
  ok &= ShapeCheck(avg_nnz > 30.0 && avg_nnz < 300.0,
                   "text corpus lands in the ~100 nnz/doc regime the paper's "
                   "sparse analysis assumes");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
