// Reproduces Figure 5: SRDA's test error as a function of the regularization
// parameter alpha, plotted against the flat LDA and IDR/QR reference lines,
// on eight panels: PIE (10, 30 train), Isolet (50, 90), MNIST (30, 100),
// 20Newsgroups (5%, 10%).
//
// The x-axis is alpha/(1+alpha) on a grid over (0, 1), exactly as in the
// paper. The qualitative claim checked: SRDA beats both references over a
// wide range of alpha, so parameter selection is not critical.
//
// Pass --full for paper-scale datasets and more splits.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "classify/classifiers.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/idr_qr.h"
#include "core/lda.h"
#include "core/srda.h"
#include "core/srda_path.h"
#include "dataset/digit_generator.h"
#include "dataset/face_generator.h"
#include "dataset/split.h"
#include "dataset/spoken_letter_generator.h"
#include "dataset/text_generator.h"
#include "matrix/blas.h"
#include "solver/ridge_solver.h"

namespace srda {
namespace bench {
namespace {

// alpha/(1+alpha) grid from the paper's plots.
const double kGridRatios[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};

struct PanelResult {
  std::string name;
  std::vector<double> srda_errors;  // one per grid point
  double lda_error = 0.0;
  double idr_error = 0.0;
  bool lda_ran = false;
};

// Runs one dense panel: LDA and IDR/QR once per split; the whole SRDA alpha
// grid comes from ONE cached Gram per split via the regularization path —
// each grid point pays only a Cholesky refactorization, producing exactly
// the normal-equations solutions at a fraction of the sweep cost.
PanelResult RunDensePanel(const std::string& name, const DenseDataset& data,
                          int train_per_class, int num_splits, uint64_t seed) {
  PanelResult panel;
  panel.name = name;
  panel.srda_errors.assign(std::size(kGridRatios), 0.0);
  std::vector<double> lda_errors;
  std::vector<double> idr_errors;
  Rng rng(seed);
  for (int s = 0; s < num_splits; ++s) {
    const TrainTestSplit split = StratifiedSplitByCount(
        data.labels, data.num_classes, train_per_class, &rng);
    const DenseDataset train = Subset(data, split.train);
    const DenseDataset test = Subset(data, split.test);
    lda_errors.push_back(
        RunDense(Algorithm::kLda, train, test).error_percent);
    idr_errors.push_back(
        RunDense(Algorithm::kIdrQr, train, test).error_percent);
    SrdaRegularizationPath path;
    SRDA_CHECK(path.Fit(train.features, train.labels, train.num_classes))
        << "regularization path failed";
    for (size_t g = 0; g < std::size(kGridRatios); ++g) {
      const double ratio = kGridRatios[g];
      const double alpha = ratio / (1.0 - ratio);
      const LinearEmbedding embedding = path.EmbeddingAt(alpha);
      CentroidClassifier classifier;
      classifier.Fit(embedding.Transform(train.features), train.labels,
                     train.num_classes);
      panel.srda_errors[g] +=
          100.0 *
          ErrorRate(classifier.Predict(embedding.Transform(test.features)),
                    test.labels) /
          num_splits;
    }
  }
  panel.lda_error = ComputeMeanStd(lda_errors).mean;
  panel.idr_error = ComputeMeanStd(idr_errors).mean;
  panel.lda_ran = true;
  return panel;
}

// Sparse text panel: LDA via a densified train split, SRDA via sparse LSQR.
PanelResult RunTextPanel(const std::string& name, const SparseDataset& data,
                         double fraction, int num_splits, uint64_t seed) {
  PanelResult panel;
  panel.name = name;
  panel.srda_errors.assign(std::size(kGridRatios), 0.0);
  std::vector<double> lda_errors;
  std::vector<double> idr_errors;
  Rng rng(seed);
  for (int s = 0; s < num_splits; ++s) {
    const TrainTestSplit split = StratifiedSplitByFraction(
        data.labels, data.num_classes, fraction, &rng);
    const SparseDataset train = Subset(data, split.train);
    const SparseDataset test = Subset(data, split.test);
    // Dense references on the densified training split.
    const DenseDataset dense_train = Densify(train);
    const DenseDataset dense_test = Densify(test);
    lda_errors.push_back(
        RunDense(Algorithm::kLda, dense_train, dense_test).error_percent);
    idr_errors.push_back(
        RunDense(Algorithm::kIdrQr, dense_train, dense_test).error_percent);
    for (size_t g = 0; g < std::size(kGridRatios); ++g) {
      const double ratio = kGridRatios[g];
      const double alpha = ratio / (1.0 - ratio);
      panel.srda_errors[g] +=
          RunSparseSrda(train, test, alpha).error_percent / num_splits;
    }
  }
  panel.lda_error = ComputeMeanStd(lda_errors).mean;
  panel.idr_error = ComputeMeanStd(idr_errors).mean;
  panel.lda_ran = true;
  return panel;
}

void PrintPanel(const PanelResult& panel) {
  std::cout << "\n-- Figure 5 panel: " << panel.name << " --\n";
  TablePrinter table({"alpha/(1+alpha)", "SRDA error %", "LDA", "IDR/QR"});
  for (size_t g = 0; g < std::size(kGridRatios); ++g) {
    table.AddRow({FormatDouble(kGridRatios[g], 1),
                  FormatDouble(panel.srda_errors[g], 2),
                  FormatDouble(panel.lda_error, 2),
                  FormatDouble(panel.idr_error, 2)});
  }
  table.Print(std::cout);
}

// SRDA should beat both reference lines on a wide alpha range (the paper's
// conclusion: "parameter selection is not a very crucial problem").
bool CheckPanel(const PanelResult& panel) {
  int wins = 0;
  for (double error : panel.srda_errors) {
    if (error <= panel.lda_error + 0.5 && error <= panel.idr_error + 0.5) {
      ++wins;
    }
  }
  return ShapeCheck(wins >= static_cast<int>(std::size(kGridRatios)) / 2,
                    panel.name + ": SRDA at least ties LDA and IDR/QR on >=" +
                        std::to_string(std::size(kGridRatios) / 2) + "/9 of "
                        "the alpha grid");
}

// Times the whole alpha grid two ways on one Isolet-like training set:
// rebuilding the Gram from scratch per grid point (a fresh FitSrda call per
// alpha, the pre-engine behaviour) versus one RidgeSolver whose cached Gram
// is refactored per alpha. The embeddings must be bitwise identical; only
// the time changes. Returns true if the shape check passes (always true
// under --smoke, which skips checks).
bool RunAlphaSweep(bool smoke) {
  SpokenLetterGeneratorOptions options;
  options.examples_per_class = smoke ? 12 : 40;  // 26 * 40 = 1040 samples
  options.num_features = smoke ? 60 : 1024;      // primal Gram is n x n
  const DenseDataset data = GenerateSpokenLetterDataset(options);
  const int n = data.features.cols();
  const int m = data.features.rows();

  std::vector<double> alphas;
  for (double ratio : kGridRatios) alphas.push_back(ratio / (1.0 - ratio));

  // Baseline: every grid point pays the full Gram + factor + solve.
  std::vector<SrdaModel> rebuilt;
  Stopwatch rebuild_watch;
  for (double alpha : alphas) {
    SrdaOptions srda_options;
    srda_options.alpha = alpha;
    rebuilt.push_back(
        FitSrda(data.features, data.labels, data.num_classes, srda_options));
  }
  const double rebuild_seconds = rebuild_watch.ElapsedSeconds();

  // Engine: the Gram is computed once; each further alpha refactors it.
  std::vector<SrdaModel> cached;
  Stopwatch cached_watch;
  RidgeSolver solver(&data.features);
  for (double alpha : alphas) {
    SrdaOptions srda_options;
    srda_options.alpha = alpha;
    cached.push_back(
        FitSrda(&solver, data.labels, data.num_classes, srda_options));
  }
  const double cached_seconds = cached_watch.ElapsedSeconds();

  double max_diff = 0.0;
  for (size_t a = 0; a < alphas.size(); ++a) {
    SRDA_CHECK(rebuilt[a].converged && cached[a].converged);
    max_diff = std::max(
        max_diff, MaxAbsDiff(rebuilt[a].embedding.projection(),
                             cached[a].embedding.projection()));
    max_diff = std::max(max_diff, MaxAbsDiff(rebuilt[a].embedding.bias(),
                                             cached[a].embedding.bias()));
  }
  SRDA_CHECK_EQ(max_diff, 0.0)
      << "cached-Gram sweep must be bitwise identical to rebuilds";

  const double speedup =
      cached_seconds > 0.0 ? rebuild_seconds / cached_seconds : 0.0;
  std::cout << "\n== Gram-reuse alpha sweep (" << m << " x " << n << ", "
            << alphas.size() << " alphas) ==\n";
  TablePrinter table({"strategy", "seconds", "speedup"});
  table.AddRow({"rebuild per alpha", FormatDouble(rebuild_seconds, 4), "1.0"});
  table.AddRow({"cached Gram", FormatDouble(cached_seconds, 4),
                FormatDouble(speedup, 2)});
  table.Print(std::cout);

  if (smoke) return true;
  std::ofstream json("BENCH_alpha_sweep.json");
  json << "{\n  \"experiment\": \"alpha_sweep_gram_reuse\",\n"
       << "  \"samples\": " << m << ",\n"
       << "  \"features\": " << n << ",\n"
       << "  \"num_alphas\": " << alphas.size() << ",\n"
       << "  \"rebuild_seconds\": " << rebuild_seconds << ",\n"
       << "  \"cached_seconds\": " << cached_seconds << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"max_abs_diff\": " << max_diff << "\n}\n";
  std::cout << "wrote BENCH_alpha_sweep.json\n";
  return ShapeCheck(speedup >= 1.5,
                    "cached-Gram alpha sweep at least 1.5x faster than "
                    "rebuilding per alpha");
}

int Main(int argc, char** argv) {
  BenchObservability obs(argc, argv);
  const bool full = HasFlag(argc, argv, "--full");
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const int splits = smoke ? 1 : (full ? 5 : 2);

  std::cout << "Experiment: Figure 5 (model selection for SRDA)\n"
            << "Profile: "
            << (smoke ? "smoke (tiny sizes, no checks)"
                      : (full ? "full" : "small (use --full)"))
            << "\n";

  std::vector<PanelResult> panels;

  {
    FaceGeneratorOptions options;
    options.num_subjects = full ? 68 : 20;
    options.images_per_subject = smoke ? 8 : (full ? 170 : 40);
    options.image_size = full ? 32 : 16;
    const DenseDataset faces = GenerateFaceDataset(options);
    panels.push_back(RunDensePanel("PIE-like (4 train)", faces,
                                   smoke ? 4 : 10, splits, 51));
    if (!smoke) {
      panels.push_back(
          RunDensePanel("PIE-like (30 train)", faces, 30, splits, 52));
    }
  }
  {
    SpokenLetterGeneratorOptions options;
    options.examples_per_class = smoke ? 12 : (full ? 240 : 120);
    options.num_features = smoke ? 60 : (full ? 617 : 200);
    const DenseDataset isolet = GenerateSpokenLetterDataset(options);
    panels.push_back(RunDensePanel("Isolet-like (6 train)", isolet,
                                   smoke ? 6 : 50, splits, 53));
    if (!smoke) {
      panels.push_back(
          RunDensePanel("Isolet-like (90 train)", isolet, 90, splits, 54));
    }
  }
  {
    DigitGeneratorOptions options;
    options.examples_per_class = smoke ? 12 : (full ? 400 : 200);
    options.image_size = smoke ? 8 : (full ? 28 : 16);
    const DenseDataset digits = GenerateDigitDataset(options);
    panels.push_back(RunDensePanel("MNIST-like (6 train)", digits,
                                   smoke ? 6 : 30, splits, 55));
    if (!smoke) {
      panels.push_back(
          RunDensePanel("MNIST-like (100 train)", digits, 100, splits, 56));
    }
  }
  {
    TextGeneratorOptions options;
    options.docs_per_topic = smoke ? 30 : (full ? 947 : 120);
    options.vocabulary_size = smoke ? 2000 : (full ? 26214 : 8000);
    options.topic_vocabulary_size = smoke ? 200 : (full ? 1500 : 500);
    const SparseDataset text = GenerateTextDataset(options);
    panels.push_back(RunTextPanel("20News-like (20% train)", text,
                                  smoke ? 0.2 : 0.05, splits, 57));
    if (!smoke) {
      panels.push_back(
          RunTextPanel("20News-like (10% train)", text, 0.10, splits, 58));
    }
  }

  for (const PanelResult& panel : panels) PrintPanel(panel);
  const bool sweep_ok = RunAlphaSweep(smoke);
  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  std::cout << "\n== Shape checks vs the paper ==\n";
  bool ok = true;
  int passing_panels = 0;
  for (const PanelResult& panel : panels) {
    if (CheckPanel(panel)) ++passing_panels;
  }
  ok = ShapeCheck(passing_panels >= 6,
                  "SRDA robust to alpha on at least 6 of 8 panels (Figure 5)");
  return (ok && sweep_ok) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
