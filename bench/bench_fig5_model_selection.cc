// Reproduces Figure 5: SRDA's test error as a function of the regularization
// parameter alpha, plotted against the flat LDA and IDR/QR reference lines,
// on eight panels: PIE (10, 30 train), Isolet (50, 90), MNIST (30, 100),
// 20Newsgroups (5%, 10%).
//
// The x-axis is alpha/(1+alpha) on a grid over (0, 1), exactly as in the
// paper. The qualitative claim checked: SRDA beats both references over a
// wide range of alpha, so parameter selection is not critical.
//
// Pass --full for paper-scale datasets and more splits.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "classify/classifiers.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "core/idr_qr.h"
#include "core/lda.h"
#include "core/srda.h"
#include "core/srda_path.h"
#include "dataset/digit_generator.h"
#include "dataset/face_generator.h"
#include "dataset/split.h"
#include "dataset/spoken_letter_generator.h"
#include "dataset/text_generator.h"

namespace srda {
namespace bench {
namespace {

// alpha/(1+alpha) grid from the paper's plots.
const double kGridRatios[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};

struct PanelResult {
  std::string name;
  std::vector<double> srda_errors;  // one per grid point
  double lda_error = 0.0;
  double idr_error = 0.0;
  bool lda_ran = false;
};

// Runs one dense panel: LDA and IDR/QR once per split; the whole SRDA alpha
// grid comes from ONE SVD per split via the regularization path (exactly
// the normal-equations solutions, at a fraction of the sweep cost).
PanelResult RunDensePanel(const std::string& name, const DenseDataset& data,
                          int train_per_class, int num_splits, uint64_t seed) {
  PanelResult panel;
  panel.name = name;
  panel.srda_errors.assign(std::size(kGridRatios), 0.0);
  std::vector<double> lda_errors;
  std::vector<double> idr_errors;
  Rng rng(seed);
  for (int s = 0; s < num_splits; ++s) {
    const TrainTestSplit split = StratifiedSplitByCount(
        data.labels, data.num_classes, train_per_class, &rng);
    const DenseDataset train = Subset(data, split.train);
    const DenseDataset test = Subset(data, split.test);
    lda_errors.push_back(
        RunDense(Algorithm::kLda, train, test).error_percent);
    idr_errors.push_back(
        RunDense(Algorithm::kIdrQr, train, test).error_percent);
    SrdaRegularizationPath path;
    SRDA_CHECK(path.Fit(train.features, train.labels, train.num_classes))
        << "regularization path failed";
    for (size_t g = 0; g < std::size(kGridRatios); ++g) {
      const double ratio = kGridRatios[g];
      const double alpha = ratio / (1.0 - ratio);
      const LinearEmbedding embedding = path.EmbeddingAt(alpha);
      CentroidClassifier classifier;
      classifier.Fit(embedding.Transform(train.features), train.labels,
                     train.num_classes);
      panel.srda_errors[g] +=
          100.0 *
          ErrorRate(classifier.Predict(embedding.Transform(test.features)),
                    test.labels) /
          num_splits;
    }
  }
  panel.lda_error = ComputeMeanStd(lda_errors).mean;
  panel.idr_error = ComputeMeanStd(idr_errors).mean;
  panel.lda_ran = true;
  return panel;
}

// Sparse text panel: LDA via a densified train split, SRDA via sparse LSQR.
PanelResult RunTextPanel(const std::string& name, const SparseDataset& data,
                         double fraction, int num_splits, uint64_t seed) {
  PanelResult panel;
  panel.name = name;
  panel.srda_errors.assign(std::size(kGridRatios), 0.0);
  std::vector<double> lda_errors;
  std::vector<double> idr_errors;
  Rng rng(seed);
  for (int s = 0; s < num_splits; ++s) {
    const TrainTestSplit split = StratifiedSplitByFraction(
        data.labels, data.num_classes, fraction, &rng);
    const SparseDataset train = Subset(data, split.train);
    const SparseDataset test = Subset(data, split.test);
    // Dense references on the densified training split.
    const DenseDataset dense_train = Densify(train);
    const DenseDataset dense_test = Densify(test);
    lda_errors.push_back(
        RunDense(Algorithm::kLda, dense_train, dense_test).error_percent);
    idr_errors.push_back(
        RunDense(Algorithm::kIdrQr, dense_train, dense_test).error_percent);
    for (size_t g = 0; g < std::size(kGridRatios); ++g) {
      const double ratio = kGridRatios[g];
      const double alpha = ratio / (1.0 - ratio);
      panel.srda_errors[g] +=
          RunSparseSrda(train, test, alpha).error_percent / num_splits;
    }
  }
  panel.lda_error = ComputeMeanStd(lda_errors).mean;
  panel.idr_error = ComputeMeanStd(idr_errors).mean;
  panel.lda_ran = true;
  return panel;
}

void PrintPanel(const PanelResult& panel) {
  std::cout << "\n-- Figure 5 panel: " << panel.name << " --\n";
  TablePrinter table({"alpha/(1+alpha)", "SRDA error %", "LDA", "IDR/QR"});
  for (size_t g = 0; g < std::size(kGridRatios); ++g) {
    table.AddRow({FormatDouble(kGridRatios[g], 1),
                  FormatDouble(panel.srda_errors[g], 2),
                  FormatDouble(panel.lda_error, 2),
                  FormatDouble(panel.idr_error, 2)});
  }
  table.Print(std::cout);
}

// SRDA should beat both reference lines on a wide alpha range (the paper's
// conclusion: "parameter selection is not a very crucial problem").
bool CheckPanel(const PanelResult& panel) {
  int wins = 0;
  for (double error : panel.srda_errors) {
    if (error <= panel.lda_error + 0.5 && error <= panel.idr_error + 0.5) {
      ++wins;
    }
  }
  return ShapeCheck(wins >= static_cast<int>(std::size(kGridRatios)) / 2,
                    panel.name + ": SRDA at least ties LDA and IDR/QR on >=" +
                        std::to_string(std::size(kGridRatios) / 2) + "/9 of "
                        "the alpha grid");
}

int Main(int argc, char** argv) {
  const bool full = HasFlag(argc, argv, "--full");
  const bool smoke = HasFlag(argc, argv, "--smoke");
  const int splits = smoke ? 1 : (full ? 5 : 2);

  std::cout << "Experiment: Figure 5 (model selection for SRDA)\n"
            << "Profile: "
            << (smoke ? "smoke (tiny sizes, no checks)"
                      : (full ? "full" : "small (use --full)"))
            << "\n";

  std::vector<PanelResult> panels;

  {
    FaceGeneratorOptions options;
    options.num_subjects = full ? 68 : 20;
    options.images_per_subject = smoke ? 8 : (full ? 170 : 40);
    options.image_size = full ? 32 : 16;
    const DenseDataset faces = GenerateFaceDataset(options);
    panels.push_back(RunDensePanel("PIE-like (4 train)", faces,
                                   smoke ? 4 : 10, splits, 51));
    if (!smoke) {
      panels.push_back(
          RunDensePanel("PIE-like (30 train)", faces, 30, splits, 52));
    }
  }
  {
    SpokenLetterGeneratorOptions options;
    options.examples_per_class = smoke ? 12 : (full ? 240 : 120);
    options.num_features = smoke ? 60 : (full ? 617 : 200);
    const DenseDataset isolet = GenerateSpokenLetterDataset(options);
    panels.push_back(RunDensePanel("Isolet-like (6 train)", isolet,
                                   smoke ? 6 : 50, splits, 53));
    if (!smoke) {
      panels.push_back(
          RunDensePanel("Isolet-like (90 train)", isolet, 90, splits, 54));
    }
  }
  {
    DigitGeneratorOptions options;
    options.examples_per_class = smoke ? 12 : (full ? 400 : 200);
    options.image_size = smoke ? 8 : (full ? 28 : 16);
    const DenseDataset digits = GenerateDigitDataset(options);
    panels.push_back(RunDensePanel("MNIST-like (6 train)", digits,
                                   smoke ? 6 : 30, splits, 55));
    if (!smoke) {
      panels.push_back(
          RunDensePanel("MNIST-like (100 train)", digits, 100, splits, 56));
    }
  }
  {
    TextGeneratorOptions options;
    options.docs_per_topic = smoke ? 30 : (full ? 947 : 120);
    options.vocabulary_size = smoke ? 2000 : (full ? 26214 : 8000);
    options.topic_vocabulary_size = smoke ? 200 : (full ? 1500 : 500);
    const SparseDataset text = GenerateTextDataset(options);
    panels.push_back(RunTextPanel("20News-like (20% train)", text,
                                  smoke ? 0.2 : 0.05, splits, 57));
    if (!smoke) {
      panels.push_back(
          RunTextPanel("20News-like (10% train)", text, 0.10, splits, 58));
    }
  }

  for (const PanelResult& panel : panels) PrintPanel(panel);
  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  std::cout << "\n== Shape checks vs the paper ==\n";
  bool ok = true;
  int passing_panels = 0;
  for (const PanelResult& panel : panels) {
    if (CheckPanel(panel)) ++passing_panels;
  }
  ok = ShapeCheck(passing_panels >= 6,
                  "SRDA robust to alpha on at least 6 of 8 panels (Figure 5)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
