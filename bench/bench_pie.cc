// Reproduces Tables III & IV and Figure 1: error rate and training time on
// the PIE-like face dataset as functions of the number of labeled samples
// per class, for LDA / RLDA / SRDA / IDR-QR.
//
// Default profile is scaled down (16x16 images, 3 splits) to finish quickly
// on one core; pass --full for the paper-scale 32x32 / 170-images / 6-sizes
// sweep.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "dataset/face_generator.h"

namespace srda {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchObservability obs(argc, argv);
  const bool full = HasFlag(argc, argv, "--full");
  const bool smoke = HasFlag(argc, argv, "--smoke");

  FaceGeneratorOptions options;
  options.num_subjects = 68;
  options.images_per_subject = smoke ? 4 : (full ? 170 : 40);
  options.image_size = full ? 32 : 16;
  const std::vector<int> train_sizes =
      smoke ? std::vector<int>{2}
            : (full ? std::vector<int>{10, 20, 30, 40, 50, 60}
                    : std::vector<int>{10, 20, 30});
  const int num_splits = smoke ? 1 : (full ? 10 : 3);

  std::cout << "Experiment: Tables III & IV / Figure 1 (PIE-like faces)\n"
            << "Profile: "
            << (smoke ? "smoke (tiny sizes, no checks)"
                      : (full ? "full" : "small (use --full)"))
            << "  m=" << options.num_subjects * options.images_per_subject
            << " n=" << options.image_size * options.image_size
            << " c=" << options.num_subjects << " splits=" << num_splits
            << "\n";

  const DenseDataset dataset = GenerateFaceDataset(options);
  const std::vector<Algorithm> algorithms = {
      Algorithm::kLda, Algorithm::kRlda, Algorithm::kSrda,
      Algorithm::kIdrQr};
  const auto cells = RunCountSweep(dataset, train_sizes, algorithms,
                                   num_splits, /*seed=*/101, "PIE-like");
  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  // Qualitative claims from the paper's Tables III/IV.
  std::cout << "\n== Shape checks vs the paper ==\n";
  bool ok = true;
  const size_t first = 0;
  const size_t last = cells.size() - 1;
  ok &= ShapeCheck(
      cells[first][2].error_mean <= cells[first][0].error_mean + 1.0,
      "SRDA error <= LDA error at the smallest training size (Table III)");
  ok &= ShapeCheck(
      cells[first][2].error_mean < cells[first][3].error_mean + 1.0,
      "SRDA error <= IDR/QR error (Table III)");
  ok &= ShapeCheck(
      std::abs(cells[last][2].error_mean - cells[last][1].error_mean) < 5.0,
      "SRDA and RLDA within a few points of each other (Table III)");
  ok &= ShapeCheck(
      cells[last][2].seconds_mean < cells[last][0].seconds_mean,
      "SRDA trains faster than LDA (Table IV)");
  ok &= ShapeCheck(
      cells[last][2].seconds_mean < cells[last][1].seconds_mean,
      "SRDA trains faster than RLDA (Table IV)");
  ok &= ShapeCheck(
      cells[last][0].error_mean > cells[last - 1][0].error_mean - 20.0,
      "error decreases (or stays flat) with more training data (Figure 1)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
