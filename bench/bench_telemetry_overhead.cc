// Telemetry overhead benchmark: what does live observability cost the
// serving hot path?
//
// Drives the same micro-batched serving workload twice against one SRDA
// model:
//
//   plain      — PredictionService alone. The windowed instruments are
//                still fed (they always are; one atomic CAS + add per
//                batch), so this is the shipping configuration with
//                nobody watching.
//   telemetry  — the same traffic while a TelemetryServer answers
//                /metrics scrapes at 1 Hz from a client thread AND a
//                background Exporter snapshots the registry to a file at
//                1 Hz — a fully observed process.
//
// The claim under test: a scrape reads the same lock-free instruments the
// dispatcher writes, so full observation costs at most a few percent of
// throughput, and the instruments themselves are free at the noise level.
// Configurations alternate (plain, telemetry, plain, ...) and each takes
// its best of `reps` so scheduler drift hits both evenly.
//
// Full mode writes BENCH_telemetry_overhead.json and asserts the shape
// checks (overhead below 10%, scrapes well-formed, exporter snapshots
// written). Pass --smoke for a sub-second run without checks;
// --json-out=FILE writes the JSON in either mode.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/trainers.h"
#include "model/model.h"
#include "obs/exporter.h"
#include "obs/http.h"
#include "obs/json_check.h"
#include "serve/serving.h"
#include "serve/telemetry.h"

namespace srda {
namespace bench {
namespace {

struct Blobs {
  Matrix features;
  std::vector<int> labels;
  int num_classes = 0;
};

Blobs MakeBlobs(int rows, int cols, int num_classes, uint64_t seed) {
  Rng rng(seed);
  Blobs blobs;
  blobs.features = Matrix(rows, cols);
  blobs.num_classes = num_classes;
  for (int i = 0; i < rows; ++i) {
    const int k = i % num_classes;
    blobs.labels.push_back(k);
    for (int j = 0; j < cols; ++j) {
      const bool hot = j == k % cols || j == (k + 1) % cols;
      blobs.features(i, j) = (hot ? 4.0 : 0.0) + rng.NextGaussian();
    }
  }
  return blobs;
}

std::vector<Matrix> SliceBlocks(const Matrix& features, int block_rows) {
  std::vector<Matrix> blocks;
  for (int start = 0; start < features.rows(); start += block_rows) {
    const int rows = std::min(block_rows, features.rows() - start);
    Matrix block(rows, features.cols());
    std::memcpy(block.RowPtr(0), features.RowPtr(start),
                static_cast<size_t>(rows) * features.cols() * sizeof(double));
    blocks.push_back(std::move(block));
  }
  return blocks;
}

// One serving pass: `clients` threads push blocks until `requests` rows
// have been served. Returns sustained predictions/s.
double RunTraffic(const model::SrdaModel& model,
                  const std::vector<Matrix>& blocks, int clients,
                  int64_t requests) {
  serve::PredictionService service(&model);
  std::atomic<int64_t> budget{requests};
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&service, &blocks, &budget, c] {
      size_t next = static_cast<size_t>(c) % blocks.size();
      while (true) {
        const Matrix& block = blocks[next];
        next = (next + 1) % blocks.size();
        if (budget.fetch_sub(block.rows(), std::memory_order_relaxed) <= 0) {
          return;
        }
        service.Predict(block);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double seconds = watch.ElapsedSeconds();
  return static_cast<double>(service.Stats().requests) / seconds;
}

int Main(int argc, char** argv) {
  BenchObservability obs(argc, argv);
  const bool smoke = HasFlag(argc, argv, "--smoke");

  const int rows = smoke ? 120 : 2000;
  const int cols = smoke ? 8 : 32;
  const int num_classes = smoke ? 4 : 10;
  const int clients = smoke ? 2 : 4;
  const int64_t requests = smoke ? 2000 : 300000;
  const int reps = smoke ? 1 : 3;
  const Blobs blobs = MakeBlobs(rows, cols, num_classes, 7);

  std::cout << "Experiment: telemetry overhead on the serving hot path\n"
            << "Profile: " << (smoke ? "smoke (tiny sizes, no checks)" : "full")
            << "\n"
            << "Dataset: " << rows << " x " << cols << ", " << num_classes
            << " classes, " << clients << " clients, " << requests
            << " requests/pass\n";

  TrainerOptions train_options;
  train_options.alpha = 1.0;
  const TrainResult trained = TrainDenseByName(
      "srda", blobs.features, blobs.labels, num_classes, train_options);
  const model::SrdaModel model = model::BuildModel(
      trained.embedding, trained.embedding.Transform(blobs.features),
      blobs.labels, num_classes, {}, {});
  const std::vector<Matrix> blocks =
      SliceBlocks(blobs.features, smoke ? 16 : 64);

  // --- Plain vs fully observed, alternating reps. ---
  double plain_best = 0.0;
  double telemetry_best = 0.0;
  int64_t scrapes_total = 0;
  int64_t snapshots_total = 0;
  bool scrapes_valid = true;
  const std::string snapshot_path =
      "bench_telemetry_metrics." + std::to_string(::getpid()) + ".prom";
  for (int rep = 0; rep < reps; ++rep) {
    plain_best = std::max(plain_best,
                          RunTraffic(model, blocks, clients, requests));

    serve::TelemetryServer telemetry(10);
    if (!telemetry.Start(0)) {
      std::cout << "telemetry bind failed; skipping observed pass\n";
      continue;
    }
    telemetry.SetReady(true);
    srda::obs::ExporterOptions exporter_options;
    exporter_options.path = snapshot_path;
    exporter_options.interval_s = 1.0;
    srda::obs::Exporter exporter(exporter_options);
    exporter.Start();
    // 1 Hz scrape client, the Prometheus-server stand-in. Every response
    // must be a well-formed exposition page.
    std::atomic<bool> stop_scraper{false};
    std::thread scraper([&telemetry, &stop_scraper, &scrapes_valid] {
      while (!stop_scraper.load(std::memory_order_relaxed)) {
        int status = 0;
        std::string body;
        if (srda::obs::ParseHttpResponse(
                srda::obs::HttpGet(telemetry.port(), "/metrics"), &status,
                &body)) {
          std::string error;
          if (status != 200 ||
              !ValidatePrometheusText(body, {"srda_up"}, &error)) {
            scrapes_valid = false;
          }
        } else {
          scrapes_valid = false;
        }
        for (int i = 0; i < 10 && !stop_scraper.load(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      }
    });
    telemetry_best = std::max(telemetry_best,
                              RunTraffic(model, blocks, clients, requests));
    stop_scraper.store(true);
    scraper.join();
    exporter.Stop();
    scrapes_total += telemetry.scrapes();
    snapshots_total += exporter.snapshots_written();
    telemetry.Stop();
  }
  std::remove(snapshot_path.c_str());
  std::remove((snapshot_path + ".tmp").c_str());

  const double overhead_percent =
      plain_best > 0.0
          ? (plain_best - telemetry_best) / plain_best * 100.0
          : 0.0;

  TablePrinter table({"config", "preds/s", "scrapes", "snapshots"});
  table.AddRow({"plain", FormatDouble(plain_best, 0), "-", "-"});
  table.AddRow({"telemetry (1 Hz scrape + 1 Hz export)",
                FormatDouble(telemetry_best, 0),
                std::to_string(scrapes_total),
                std::to_string(snapshots_total)});
  table.Print(std::cout);
  std::cout << "observed-vs-plain throughput overhead: "
            << FormatDouble(overhead_percent, 2) << "% (negative = noise)\n"
            << "all scrapes well-formed: " << (scrapes_valid ? "yes" : "NO")
            << "\n";

  const std::string json_out = GetFlagValue(argc, argv, "--json-out");
  const std::string json_path =
      !json_out.empty() ? json_out
                        : std::string("BENCH_telemetry_overhead.json");
  if (smoke && json_out.empty()) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  std::ofstream json(json_path);
  json << "{\n  \"experiment\": \"telemetry_overhead\",\n"
       << "  \"rows\": " << rows << ",\n"
       << "  \"cols\": " << cols << ",\n"
       << "  \"clients\": " << clients << ",\n"
       << "  \"requests_per_pass\": " << requests << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"plain_predictions_per_s\": " << plain_best << ",\n"
       << "  \"telemetry_predictions_per_s\": " << telemetry_best << ",\n"
       << "  \"overhead_percent\": " << overhead_percent << ",\n"
       << "  \"scrapes\": " << scrapes_total << ",\n"
       << "  \"exporter_snapshots\": " << snapshots_total << ",\n"
       << "  \"scrapes_well_formed\": " << (scrapes_valid ? "true" : "false")
       << "\n}\n";
  std::cout << "wrote " << json_path << "\n";

  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  bool ok = true;
  ok &= ShapeCheck(scrapes_valid,
                   "every live /metrics scrape is well-formed Prometheus text");
  ok &= ShapeCheck(scrapes_total >= reps,
                   "the scraper actually hit the live endpoint during traffic");
  ok &= ShapeCheck(snapshots_total >= 2 * reps,
                   "the background exporter wrote periodic snapshots");
  // "A few percent" headline with slack for machine noise: the gate is
  // 10%, the measured number is in the JSON for the paper table.
  ok &= ShapeCheck(overhead_percent < 10.0,
                   "1 Hz scraping + export costs < 10% throughput");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
