// Shared harness for the table/figure reproduction benchmarks.
//
// Each bench binary reproduces one of the paper's tables/figures: it sweeps
// the training-set size, runs the four algorithms over several random
// stratified splits, and prints error-rate and training-time tables in the
// paper's layout, followed by automated "shape checks" that assert the
// qualitative findings (who wins, by what factor) rather than absolute
// numbers, since the substrate is synthetic data on different hardware.

#ifndef SRDA_BENCH_BENCH_UTIL_H_
#define SRDA_BENCH_BENCH_UTIL_H_

#include <optional>
#include <string>
#include <vector>

#include "dataset/dataset.h"

namespace srda {
namespace bench {

enum class Algorithm {
  kLda,
  kRlda,
  kSrda,       // normal equations on dense data, LSQR on sparse
  kIdrQr,
};

std::string AlgorithmName(Algorithm algorithm);

// One train+evaluate run. `error` is the test error rate in percent;
// `seconds` is the training (projection-learning) time only, matching the
// paper's "computational time" tables. `num_threads` records the global
// thread-pool width the run executed with, so result rows from different
// machines/configs stay comparable. `gflops` is the achieved training
// throughput from the runtime flop counter (common/flops.h) over the same
// timed region — 0 when training was too fast to time.
struct RunResult {
  double error_percent = 0.0;
  double seconds = 0.0;
  int num_threads = 0;
  double gflops = 0.0;
};

// Trains `algorithm` on the dense train split and evaluates on the test
// split with a nearest-centroid classifier. `alpha` applies to RLDA/SRDA.
RunResult RunDense(Algorithm algorithm, const DenseDataset& train,
                   const DenseDataset& test, double alpha = 1.0);

// Sparse path: SRDA with LSQR (the only algorithm that never densifies).
// `lsqr_iterations` mirrors the paper's fixed iteration count.
RunResult RunSparseSrda(const SparseDataset& train, const SparseDataset& test,
                        double alpha = 1.0, int lsqr_iterations = 15);

// Densifies a sparse dataset (for running the dense baselines on text data
// at small training fractions, as the paper does before memory runs out).
DenseDataset Densify(const SparseDataset& dataset);

// Aggregated sweep cell: mean +- std over splits. `gflops_mean` stays last
// so existing positional initializers keep their meaning.
struct SweepCell {
  double error_mean = 0.0;
  double error_std = 0.0;
  double seconds_mean = 0.0;
  bool ran = false;
  double gflops_mean = 0.0;
};

// Runs `algorithms` over `num_splits` stratified splits at each
// train-per-class size, printing the paper-style error and time tables and
// per-algorithm figure series. Returns cells[size_index][algorithm_index].
std::vector<std::vector<SweepCell>> RunCountSweep(
    const DenseDataset& dataset, const std::vector<int>& train_sizes,
    const std::vector<Algorithm>& algorithms, int num_splits,
    uint64_t seed, const std::string& dataset_name);

// Prints the two tables (error, time) and figure series for precomputed
// cells; row_labels name the sweep points (e.g. "10 x 68" or "5%").
void PrintSweepTables(const std::string& dataset_name,
                      const std::vector<std::string>& row_labels,
                      const std::vector<Algorithm>& algorithms,
                      const std::vector<std::vector<SweepCell>>& cells);

// Emits "[PASS]"/"[FAIL]" for a qualitative claim; returns `condition`.
bool ShapeCheck(bool condition, const std::string& description);

// True if "--full" appears among the CLI arguments.
bool HasFlag(int argc, char** argv, const std::string& flag);

// Value of a "--flag=value" argument, or "" when absent.
std::string GetFlagValue(int argc, char** argv, const std::string& flag);

// Formats the ratio numer/denom with `digits` decimals, or "-" when the
// denominator is too small for the ratio to mean anything (sub-resolution
// timings in --smoke runs would otherwise print inf/nan).
std::string FormatRatio(double numer, double denom, int digits);

// Formats an achieved-throughput cell; "-" when no rate was measured
// (zero or non-finite, e.g. the timed region was below clock resolution).
std::string FormatGflops(double gflops, int digits);

// Per-run observability for the bench binaries. Construct at the top of
// Main: it reads --trace-out=FILE and --metrics from the CLI (either one —
// or the SRDA_TRACE environment variable — turns the trace recorder on and
// resets recorder + metrics so the run starts clean). At destruction it
// prints the phase/metrics summary (obs/report.h) and writes the Chrome
// trace JSON to FILE when --trace-out was given. A run without any of the
// three triggers records nothing and prints nothing.
class BenchObservability {
 public:
  BenchObservability(int argc, char** argv);
  ~BenchObservability();

  BenchObservability(const BenchObservability&) = delete;
  BenchObservability& operator=(const BenchObservability&) = delete;

 private:
  std::string trace_path_;
  bool active_ = false;
};

}  // namespace bench
}  // namespace srda

#endif  // SRDA_BENCH_BENCH_UTIL_H_
