// Reproduces Table I: the asymptotic cost comparison between LDA and SRDA.
//
// Two empirical verifications:
//  1. Square dense problems (m == n, where the paper predicts the maximum
//     normal-equations speedup of 9x): measure LDA vs SRDA wall time over a
//     grid of sizes, fit the growth exponent, and check LDA grows ~cubically
//     in min(m, n) while SRDA grows more slowly with a large constant
//     advantage.
//  2. Sparse LSQR scaling: training time must grow ~linearly in the number
//     of samples m at fixed density (the "linear time" of the title).
//
// The analytic flam model (common/flops.h) is printed next to the measured
// times so the predicted 9x ratio can be compared with the observed one.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/flops.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/lda.h"
#include "core/srda.h"
#include "dataset/dataset.h"
#include "linalg/cholesky.h"
#include "linalg/cholesky_update.h"
#include "matrix/blas.h"
#include "matrix/blocking.h"
#include "matrix/simd/simd.h"
#include "select/model_selection.h"
#include "sparse/sparse_matrix.h"

namespace srda {
namespace bench {
namespace {

constexpr int kNumClasses = 10;

DenseDataset RandomDense(int m, int n, Rng* rng) {
  DenseDataset dataset;
  dataset.num_classes = kNumClasses;
  dataset.features = Matrix(m, n);
  for (int i = 0; i < m; ++i) {
    const int label = i % kNumClasses;
    dataset.labels.push_back(label);
    for (int j = 0; j < n; ++j) {
      dataset.features(i, j) =
          (j % kNumClasses == label ? 1.0 : 0.0) + rng->NextGaussian();
    }
  }
  return dataset;
}

SparseDataset RandomSparse(int m, int n, int nnz_per_row, Rng* rng) {
  SparseDataset dataset;
  dataset.num_classes = kNumClasses;
  SparseMatrixBuilder builder(m, n);
  for (int i = 0; i < m; ++i) {
    const int label = i % kNumClasses;
    dataset.labels.push_back(label);
    for (int k = 0; k < nnz_per_row; ++k) {
      const int col = static_cast<int>(rng->NextUint64Bounded(n));
      builder.Add(i, col, rng->NextGaussian() + (col % kNumClasses == label));
    }
  }
  dataset.features = std::move(builder).Build();
  return dataset;
}

double MedianOfThree(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

template <typename Fn>
double TimeMedian(Fn&& fn) {
  double samples[3];
  for (double& sample : samples) {
    Stopwatch watch;
    fn();
    sample = watch.ElapsedSeconds();
  }
  return MedianOfThree(samples[0], samples[1], samples[2]);
}

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

// Best-of-reps timing with achieved GFLOP/s from the runtime flop counter.
struct KernelTiming {
  double seconds = 0.0;
  double gflops = 0.0;
};

template <typename Fn>
KernelTiming TimeKernel(Fn&& fn, int reps) {
  KernelTiming best;
  best.seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const double flops_before = FlopCount();
    Stopwatch watch;
    fn();
    const double seconds = watch.ElapsedSeconds();
    const double flops = FlopCount() - flops_before;
    if (seconds < best.seconds) {
      best.seconds = seconds;
      best.gflops = seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
    }
  }
  return best;
}

// One comparison point of the kernel-blocking experiment: the reference
// loops (`naive`), the blocked kernel on the scalar/autovec table
// (`autovec`), and the blocked kernel on the best dispatch level
// (`blocked`). naive/blocked isolates blocking + SIMD together;
// autovec/blocked isolates the explicit vector kernels alone.
struct KernelRow {
  const char* kernel;
  int n;
  KernelTiming naive;
  KernelTiming autovec;
  KernelTiming blocked;
};

// Times `fn` under a forced dispatch level, restoring the previous level.
template <typename Fn>
KernelTiming TimeKernelAtLevel(simd::CpuLevel level, Fn&& fn, int reps) {
  const simd::CpuLevel previous = simd::ActiveLevel();
  simd::SetDispatchLevel(level);
  const KernelTiming timing = TimeKernel(fn, reps);
  simd::SetDispatchLevel(previous);
  return timing;
}

// Measures the blocked kernels (Gram, gemm, Cholesky, rank-8 downdate)
// against their unblocked counterparts at one size, under whatever
// BlockConfig is active, at both the scalar and the best dispatch level.
std::vector<KernelRow> MeasureKernelRows(int n, int reps, Rng* rng) {
  const simd::CpuLevel best = simd::ActiveLevel();
  const Matrix a = RandomMatrix(n, n, rng);
  const Matrix b = RandomMatrix(n, n, rng);
  Matrix spd = naive::Gram(a);
  for (int i = 0; i < n; ++i) spd(i, i) += n;

  const auto measure = [&](const char* name, auto&& reference,
                           auto&& blocked_fn) {
    return KernelRow{name, n, TimeKernel(reference, reps),
                     TimeKernelAtLevel(simd::CpuLevel::kScalar, blocked_fn,
                                       reps),
                     TimeKernelAtLevel(best, blocked_fn, reps)};
  };

  KernelRow gram_row = measure(
      "gram", [&] { naive::Gram(a); }, [&] { Gram(a); });
  KernelRow gemm_row = measure(
      "gemm", [&] { naive::Multiply(a, b); }, [&] { Multiply(a, b); });
  KernelRow chol_row = measure(
      "cholesky",
      [&] {
        Matrix l;
        naive::CholeskyFactor(spd, &l);
      },
      [&] {
        Cholesky chol;
        chol.Factor(spd);
      });

  // Downdate sweep: rank-8 removed in one lane-interleaved pass (blocked)
  // vs one rank at a time (the unblocked per-rank sweep). Both sides pay
  // the same factor copy; the small v keeps every downdate well-posed.
  Cholesky chol;
  chol.Factor(spd);
  const Matrix l0 = chol.factor();
  Matrix v = RandomMatrix(8, n, rng);
  for (int i = 0; i < v.rows(); ++i) {
    for (int j = 0; j < v.cols(); ++j) v(i, j) *= 0.01;
  }
  KernelRow downdate_row = measure(
      "downdate",
      [&] {
        Matrix l = l0;
        for (int r = 0; r < v.rows(); ++r) {
          CholeskyRankKDowndate(&l, v.Block(r, 0, 1, n));
        }
      },
      [&] {
        Matrix l = l0;
        CholeskyRankKDowndate(&l, v);
      });

  return {gram_row, gemm_row, chol_row, downdate_row};
}

void AppendKernelRow(const KernelRow& row, TablePrinter* table) {
  table->AddRow({row.kernel, std::to_string(row.n),
                 FormatDouble(row.naive.seconds, 4),
                 FormatDouble(row.autovec.seconds, 4),
                 FormatDouble(row.blocked.seconds, 4),
                 FormatRatio(row.naive.seconds, row.blocked.seconds, 2),
                 FormatRatio(row.autovec.seconds, row.blocked.seconds, 2),
                 FormatGflops(row.blocked.gflops, 2)});
}

const std::vector<std::string>& KernelTableHeader() {
  static const std::vector<std::string> header{
      "kernel", "n",       "naive s",      "autovec s",
      "simd s", "speedup", "simd speedup", "simd GFLOP/s"};
  return header;
}

void WriteKernelBlockingJson(const BlockConfig& blk,
                             const std::vector<KernelRow>& kernel_rows) {
  std::ofstream json("BENCH_kernel_blocking.json");
  json << "{\n  \"experiment\": \"kernel_blocking\",\n"
       << "  \"block_config\": {\"kc\": " << blk.kc << ", \"mc\": " << blk.mc
       << ", \"nc\": " << blk.nc << ", \"nb\": " << blk.nb << "},\n"
       << "  \"simd_level\": \"" << simd::CpuLevelName(simd::ActiveLevel())
       << "\",\n"
       << "  \"num_threads\": 1,\n  \"rows\": [\n";
  for (size_t i = 0; i < kernel_rows.size(); ++i) {
    const KernelRow& row = kernel_rows[i];
    // 0 stands for "unmeasurable" so sub-resolution timings never leak
    // inf/nan into the JSON.
    const double speedup = row.blocked.seconds > 0.0
                               ? row.naive.seconds / row.blocked.seconds
                               : 0.0;
    const double simd_speedup = row.blocked.seconds > 0.0
                                    ? row.autovec.seconds / row.blocked.seconds
                                    : 0.0;
    json << "    {\"kernel\": \"" << row.kernel << "\", \"n\": " << row.n
         << ", \"naive_seconds\": " << row.naive.seconds
         << ", \"autovec_seconds\": " << row.autovec.seconds
         << ", \"blocked_seconds\": " << row.blocked.seconds
         << ", \"speedup\": " << speedup
         << ", \"simd_speedup\": " << simd_speedup
         << ", \"naive_gflops\": " << row.naive.gflops
         << ", \"blocked_gflops\": " << row.blocked.gflops << "}"
         << (i + 1 < kernel_rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "wrote BENCH_kernel_blocking.json\n";
}

// --sweep-blocks: autotunes the cache-blocking knobs on this machine.
//
// Coordinate descent over the four SRDA_BLOCK_* knobs: each is swept over
// a candidate ladder while the other three hold their current best values.
// The level-3 knobs (kc, mc, nc) minimise combined Gram + gemm time; nb
// only shapes the factorization panels, so it minimises blocked Cholesky
// time. One pass is enough in practice — kc/nc size the streaming panels,
// mc the output tile, and nb is independent of all three — and keeps the
// sweep to a couple of minutes at n = 1024. The winning configuration is
// printed as SRDA_BLOCK_* exports and used to refresh
// BENCH_kernel_blocking.json so the recorded speedups match the tuned
// shapes.
int SweepBlocks(bool smoke, bool full, Rng* rng) {
  SetGlobalThreadCount(1);
  const int n = smoke ? 64 : (full ? 1024 : 512);
  const int reps = smoke ? 1 : 2;
  std::cout << "\n== Block-size sweep (single thread, n=" << n << ") ==\n";
  const Matrix a = RandomMatrix(n, n, rng);
  const Matrix b = RandomMatrix(n, n, rng);
  Matrix spd = Gram(a);
  for (int i = 0; i < n; ++i) spd(i, i) += n;

  const auto level3_seconds = [&] {
    return TimeKernel([&] { Gram(a); }, reps).seconds +
           TimeKernel([&] { Multiply(a, b); }, reps).seconds;
  };
  const auto cholesky_seconds = [&] {
    return TimeKernel(
               [&] {
                 Cholesky chol;
                 chol.Factor(spd);
               },
               reps)
        .seconds;
  };

  struct Knob {
    const char* name;
    int BlockConfig::*field;
    bool level3;  // true: Gram+gemm objective; false: Cholesky objective.
    std::vector<int> candidates;
  };
  const std::vector<Knob> knobs = {
      {"kc", &BlockConfig::kc, true, {64, 96, 128, 192, 256}},
      {"mc", &BlockConfig::mc, true, {16, 32, 48, 64}},
      {"nc", &BlockConfig::nc, true, {128, 256, 384, 512}},
      {"nb", &BlockConfig::nb, false, {32, 48, 64, 96, 128}},
  };

  const BlockConfig initial = GetBlockConfig();
  BlockConfig best = initial;
  TablePrinter sweep_table({"knob", "objective", "value", "seconds", ""});
  for (const Knob& knob : knobs) {
    double best_seconds = std::numeric_limits<double>::infinity();
    int best_value = best.*knob.field;
    std::vector<std::pair<int, double>> measured;
    for (int candidate : knob.candidates) {
      BlockConfig trial = best;
      trial.*knob.field = candidate;
      SetBlockConfig(trial);
      const double seconds =
          knob.level3 ? level3_seconds() : cholesky_seconds();
      measured.emplace_back(candidate, seconds);
      if (seconds < best_seconds) {
        best_seconds = seconds;
        best_value = candidate;
      }
    }
    best.*knob.field = best_value;
    for (const auto& [candidate, seconds] : measured) {
      sweep_table.AddRow({knob.name, knob.level3 ? "gram+gemm" : "cholesky",
                          std::to_string(candidate),
                          FormatDouble(seconds, 4),
                          candidate == best_value ? "<- best" : ""});
    }
  }
  SetBlockConfig(best);
  sweep_table.Print(std::cout);

  std::cout << "\ninitial config: kc=" << initial.kc << " mc=" << initial.mc
            << " nc=" << initial.nc << " nb=" << initial.nb << "\n"
            << "tuned config:   kc=" << best.kc << " mc=" << best.mc
            << " nc=" << best.nc << " nb=" << best.nb << "\n"
            << "to persist:\n"
            << "  export SRDA_BLOCK_KC=" << best.kc << "\n"
            << "  export SRDA_BLOCK_MC=" << best.mc << "\n"
            << "  export SRDA_BLOCK_NC=" << best.nc << "\n"
            << "  export SRDA_BLOCK_NB=" << best.nb << "\n";

  // Re-measure blocked vs naive under the tuned shapes and refresh the
  // recorded experiment.
  std::cout << "\n== Blocked vs naive kernels (tuned config, 1 thread) ==\n";
  const std::vector<KernelRow> rows = MeasureKernelRows(n, reps, rng);
  TablePrinter kernel_table(KernelTableHeader());
  for (const KernelRow& row : rows) AppendKernelRow(row, &kernel_table);
  kernel_table.Print(std::cout);
  if (!smoke) WriteKernelBlockingJson(best, rows);
  SetGlobalThreadCount(0);  // Restore the env/hardware default.
  return 0;
}

// --digest-out: a bitwise fingerprint of the library's deterministic
// outputs, for the ctest gate that runs this binary under
// SRDA_CPU_LEVEL=scalar and under the detected best level and compares the
// two files byte-for-byte. The digest covers a dense normal-equations fit,
// a sparse LSQR fit, a cross-validated alpha search, and a rank-k
// downdated factor — each at 1 and at 4 threads — so any dispatch level or
// thread count changing any output bit changes the file.
uint64_t Fnv1a(const double* values, size_t count, uint64_t hash) {
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(values);
  for (size_t i = 0; i < count * sizeof(double); ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

uint64_t HashMatrix(const Matrix& m, uint64_t hash) {
  return Fnv1a(m.data(),
               static_cast<size_t>(m.rows()) * static_cast<size_t>(m.cols()),
               hash);
}

int WriteDigest(const std::string& path, Rng* rng) {
  uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  const DenseDataset dense = RandomDense(120, 48, rng);
  const SparseDataset sparse = RandomSparse(240, 500, 20, rng);
  const std::vector<double> alphas = {0.01, 1.0, 100.0};

  Matrix spd = Gram(dense.features);
  AddDiagonal(static_cast<double>(spd.rows()), &spd);
  Matrix v = RandomMatrix(6, spd.cols(), rng);
  for (int i = 0; i < v.rows(); ++i) {
    for (int j = 0; j < v.cols(); ++j) v(i, j) *= 0.01;
  }

  for (int threads : {1, 4}) {
    SetGlobalThreadCount(threads);
    const SrdaModel dense_model =
        FitSrda(dense.features, dense.labels, kNumClasses);
    SrdaOptions lsqr_options;
    lsqr_options.solver = SrdaSolver::kLsqr;
    lsqr_options.lsqr_iterations = 10;
    const SrdaModel sparse_model = FitSrda(sparse.features, sparse.labels,
                                           kNumClasses, lsqr_options);
    const AlphaSearchResult search =
        SelectSrdaAlpha(dense, alphas, /*num_folds=*/3, /*seed=*/17);
    Cholesky chol;
    chol.Factor(spd);
    Matrix l = chol.factor();
    CholeskyRankKDowndate(&l, v);

    hash = HashMatrix(dense_model.embedding.projection(), hash);
    hash = HashMatrix(sparse_model.embedding.projection(), hash);
    hash = Fnv1a(search.errors.data(), search.errors.size(), hash);
    hash = HashMatrix(l, hash);
  }
  SetGlobalThreadCount(0);

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << std::hex << hash << "\n";
  std::cout << "digest " << std::hex << hash << std::dec << " -> " << path
            << " (simd_level=" << simd::CpuLevelName(simd::ActiveLevel())
            << ")\n";
  return out ? 0 : 1;
}

// Least-squares slope of log(time) vs log(size).
double FitExponent(const std::vector<double>& sizes,
                   const std::vector<double>& times) {
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const int count = static_cast<int>(sizes.size());
  for (int i = 0; i < count; ++i) {
    const double x = std::log(sizes[static_cast<size_t>(i)]);
    const double y = std::log(times[static_cast<size_t>(i)]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (count * sxy - sx * sy) / (count * sxx - sx * sx);
}

int Main(int argc, char** argv) {
  BenchObservability obs(argc, argv);
  const bool full = HasFlag(argc, argv, "--full");
  const bool smoke = HasFlag(argc, argv, "--smoke");
  Rng rng(606);

  const std::string digest_path = GetFlagValue(argc, argv, "--digest-out");
  if (!digest_path.empty()) {
    // Digest mode: deterministic outputs only, no timing. Honors
    // SRDA_CPU_LEVEL via the normal one-time dispatch.
    return WriteDigest(digest_path, &rng);
  }

  if (HasFlag(argc, argv, "--sweep-blocks")) {
    // Autotune mode (scripts/autotune_blocks.sh): sweep the SRDA_BLOCK_*
    // knobs and refresh BENCH_kernel_blocking.json, skipping the
    // complexity experiments.
    return SweepBlocks(smoke, full, &rng);
  }

  std::cout << "Experiment: Table I (complexity of LDA vs SRDA)\n"
            << "Profile: "
            << (smoke ? "smoke (tiny sizes, no checks)"
                      : (full ? "full" : "small (use --full)"))
            << "\n";

  // Part 1: dense square problems, the maximum-speedup point of Table I.
  const std::vector<int> sizes =
      smoke ? std::vector<int>{48, 64}
            : (full ? std::vector<int>{128, 256, 384, 512, 768}
                    : std::vector<int>{96, 160, 256, 384});
  std::cout << "\n== Dense square problems (m == n) ==\n";
  TablePrinter table({"m = n", "LDA s", "SRDA s", "speedup",
                      "flam-predicted speedup"});
  std::vector<double> lda_times;
  std::vector<double> srda_times;
  std::vector<double> dsizes;
  for (int size : sizes) {
    const DenseDataset data = RandomDense(size, size, &rng);
    const double lda_time = TimeMedian(
        [&] { FitLda(data.features, data.labels, kNumClasses); });
    const double srda_time = TimeMedian(
        [&] { FitSrda(data.features, data.labels, kNumClasses); });
    lda_times.push_back(lda_time);
    srda_times.push_back(srda_time);
    dsizes.push_back(size);
    const double predicted =
        LdaCost(size, size, kNumClasses).flam /
        SrdaNormalEquationsCost(size, size, kNumClasses).flam;
    table.AddRow({std::to_string(size), FormatDouble(lda_time, 4),
                  FormatDouble(srda_time, 4),
                  FormatRatio(lda_time, srda_time, 2),
                  FormatDouble(predicted, 2)});
  }
  table.Print(std::cout);

  const double lda_exponent = FitExponent(dsizes, lda_times);
  const double srda_exponent = FitExponent(dsizes, srda_times);
  std::cout << "growth exponents: LDA " << FormatDouble(lda_exponent, 2)
            << ", SRDA " << FormatDouble(srda_exponent, 2) << "\n";

  // Part 2: sparse LSQR, linear in m.
  const int vocab = smoke ? 500 : (full ? 26214 : 8000);
  std::cout << "\n== Sparse SRDA with LSQR (n = " << vocab
            << ", ~60 nnz/doc) ==\n";
  const std::vector<int> doc_counts =
      smoke ? std::vector<int>{100, 200}
            : (full ? std::vector<int>{2000, 4000, 8000, 16000}
                    : std::vector<int>{1000, 2000, 4000, 8000});
  TablePrinter sparse_table({"m", "SRDA-LSQR s", "s per 1k docs"});
  std::vector<double> sparse_sizes;
  std::vector<double> sparse_times;
  SrdaOptions lsqr_options;
  lsqr_options.solver = SrdaSolver::kLsqr;
  lsqr_options.lsqr_iterations = 15;
  for (int docs : doc_counts) {
    const SparseDataset data = RandomSparse(docs, vocab, 60, &rng);
    const double time = TimeMedian([&] {
      FitSrda(data.features, data.labels, kNumClasses, lsqr_options);
    });
    sparse_sizes.push_back(docs);
    sparse_times.push_back(time);
    sparse_table.AddRow({std::to_string(docs), FormatDouble(time, 4),
                         FormatDouble(1000.0 * time / docs, 4)});
  }
  sparse_table.Print(std::cout);
  const double sparse_exponent = FitExponent(sparse_sizes, sparse_times);
  std::cout << "growth exponent in m: " << FormatDouble(sparse_exponent, 2)
            << "\n";

  // Part 3: thread scaling of the parallel execution layer on the two hot
  // kernels (Gram for normal equations, LSQR fit for sparse data). Results
  // are bitwise identical across thread counts, so only the time moves.
  std::cout << "\n== Thread scaling (SRDA_NUM_THREADS sweep) ==\n";
  const unsigned hardware = std::thread::hardware_concurrency();
  std::cout << "hardware_concurrency: " << hardware << "\n";
  const int gram_m = smoke ? 100 : (full ? 2000 : 800);
  const int gram_n = smoke ? 50 : (full ? 800 : 400);
  const DenseDataset gram_data = RandomDense(gram_m, gram_n, &rng);
  const SparseDataset lsqr_data =
      RandomSparse(smoke ? 200 : (full ? 8000 : 2000), vocab, 60, &rng);

  struct ScalingRow {
    int num_threads;
    double gram_seconds;
    double gram_gflops;
    double fit_seconds;
  };
  std::vector<ScalingRow> scaling;
  TablePrinter thread_table({"threads", "Gram s", "sparse LSQR fit s",
                             "Gram speedup", "fit speedup"});
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  for (int threads : thread_counts) {
    SetGlobalThreadCount(threads);
    ScalingRow row;
    row.num_threads = threads;
    row.gram_seconds = TimeMedian([&] { Gram(gram_data.features); });
    row.gram_gflops =
        row.gram_seconds > 0.0
            ? static_cast<double>(gram_m) * gram_n * (gram_n + 1) /
                  row.gram_seconds / 1e9
            : 0.0;
    row.fit_seconds = TimeMedian([&] {
      FitSrda(lsqr_data.features, lsqr_data.labels, kNumClasses,
              lsqr_options);
    });
    scaling.push_back(row);
    thread_table.AddRow(
        {std::to_string(threads), FormatDouble(row.gram_seconds, 4),
         FormatDouble(row.fit_seconds, 4),
         FormatRatio(scaling.front().gram_seconds, row.gram_seconds, 2),
         FormatRatio(scaling.front().fit_seconds, row.fit_seconds, 2)});
  }
  SetGlobalThreadCount(0);  // Restore the env/hardware default.
  thread_table.Print(std::cout);

  if (!smoke) {
    std::ofstream json("BENCH_thread_scaling.json");
    json << "{\n  \"experiment\": \"thread_scaling\",\n"
         << "  \"hardware_concurrency\": " << hardware << ",\n"
         << "  \"gram_shape\": [" << gram_m << ", " << gram_n << "],\n"
         << "  \"sparse_fit_docs\": " << lsqr_data.features.rows() << ",\n"
         << "  \"rows\": [\n";
    for (size_t i = 0; i < scaling.size(); ++i) {
      json << "    {\"num_threads\": " << scaling[i].num_threads
           << ", \"gram_seconds\": " << scaling[i].gram_seconds
           << ", \"gram_gflops\": " << scaling[i].gram_gflops
           << ", \"fit_seconds\": " << scaling[i].fit_seconds << "}"
           << (i + 1 < scaling.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote BENCH_thread_scaling.json\n";
  }

  // Part 4: blocked vs naive kernels, single thread, so the reported
  // speedup isolates the cache-blocking layer (tile shapes from
  // matrix/blocking.h) from thread-level parallelism.
  std::cout << "\n== Blocked vs naive kernels (1 thread) ==\n";
  SetGlobalThreadCount(1);
  const BlockConfig& blk = GetBlockConfig();
  std::cout << "block config: kc=" << blk.kc << " mc=" << blk.mc
            << " nc=" << blk.nc << " nb=" << blk.nb << "\n";
  const std::vector<int> kernel_sizes =
      smoke ? std::vector<int>{64}
            : (full ? std::vector<int>{256, 512, 1024, 1536}
                    : std::vector<int>{256, 1024});
  std::vector<KernelRow> kernel_rows;
  TablePrinter kernel_table(KernelTableHeader());
  for (int n : kernel_sizes) {
    const int reps = smoke ? 1 : (n >= 1024 ? 2 : 3);
    for (const KernelRow& row : MeasureKernelRows(n, reps, &rng)) {
      kernel_rows.push_back(row);
      AppendKernelRow(row, &kernel_table);
    }
  }
  kernel_table.Print(std::cout);
  SetGlobalThreadCount(0);  // Restore the env/hardware default.

  if (!smoke) WriteKernelBlockingJson(blk, kernel_rows);

  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  std::cout << "\n== Shape checks vs the paper ==\n";
  bool ok = true;
  ok &= ShapeCheck(lda_exponent > 2.2,
                   "LDA wall time grows superquadratically in min(m,n) "
                   "(Table I: cubic)");
  ok &= ShapeCheck(srda_exponent < lda_exponent,
                   "SRDA grows more slowly than LDA");
  ok &= ShapeCheck(lda_times.back() / srda_times.back() > 3.0,
                   "SRDA at least 3x faster at the largest square size "
                   "(Table I predicts up to 9x)");
  ok &= ShapeCheck(sparse_exponent < 1.3,
                   "sparse SRDA-LSQR ~linear in m (the paper's title claim)");
  // Thread-scaling checks compare the 1-thread row against the 4-thread
  // row looked up by num_threads (a positional index silently broke — and
  // never fired — whenever the sweep's thread ladder changed).
  const ScalingRow* four_threads = nullptr;
  for (const ScalingRow& row : scaling) {
    if (row.num_threads == 4) four_threads = &row;
  }
  if (hardware >= 4 && four_threads != nullptr) {
    ok &= ShapeCheck(
        scaling.front().gram_seconds / four_threads->gram_seconds > 2.0,
        "Gram speeds up >2x from 1 to 4 threads");
    ok &= ShapeCheck(
        scaling.front().fit_seconds / four_threads->fit_seconds > 1.5,
        "sparse LSQR fit speeds up >1.5x from 1 to 4 threads");
  } else {
    std::cout << "[SKIP] thread-scaling speedup checks (only " << hardware
              << " hardware thread(s) available)\n";
  }
  // Blocking must pay for itself once the working set outgrows cache
  // (n >= 1024); conservative thresholds, the measured margins are larger.
  for (const KernelRow& row : kernel_rows) {
    if (row.n < 1024 || row.n != kernel_sizes.back()) continue;
    const double speedup = row.naive.seconds / row.blocked.seconds;
    ok &= ShapeCheck(speedup > 1.1,
                     std::string("blocked ") + row.kernel + " faster than "
                         "naive at n=" + std::to_string(row.n) +
                         " (single thread)");
  }
  // The explicit vector kernels must beat the autovec table on most of the
  // hot kernels at n=1024 — the one-time dispatch is pointless otherwise.
  if (simd::ActiveLevel() != simd::CpuLevel::kScalar) {
    int fast = 0;
    int measured = 0;
    for (const KernelRow& row : kernel_rows) {
      if (row.n < 1024 || row.n != kernel_sizes.back()) continue;
      ++measured;
      if (row.blocked.seconds > 0.0 &&
          row.autovec.seconds / row.blocked.seconds >= 1.3) {
        ++fast;
      }
    }
    ok &= ShapeCheck(
        measured >= 2 && fast >= 2,
        std::string("simd (") + simd::CpuLevelName(simd::ActiveLevel()) +
            ") >=1.3x over autovec on >=2 kernels at n=" +
            std::to_string(kernel_sizes.back()));
  } else {
    std::cout << "[SKIP] simd speedup check (no vector level available)\n";
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
