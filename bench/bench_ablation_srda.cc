// Ablation study of SRDA's design choices (beyond the paper's tables, but
// directly motivated by its Section III analysis):
//
//  A. LSQR iteration budget: the paper fixes 15-20 iterations; sweep k and
//     show the error plateaus by then.
//  B. Bias absorption: the append-a-constant-feature trick vs explicitly
//     centering the sparse data (which densifies it). Same accuracy, very
//     different cost.
//  C. Primal vs dual normal equations: the n <= m / n > m switch; both sides
//     must produce the same accuracy while the cheap side is chosen.
//  D. RLDA solver path: the faithful full n x n eigendecomposition (whose
//     cost the paper's tables reflect) vs the rank-(c-1) shortcut this
//     library also offers — same answer, very different cost.
//  E. Classifier protocol: the paper does not state which classifier its
//     error rates use; verify the method ranking is robust to the choice
//     (nearest centroid vs 1-NN vs 5-NN in the embedded space).

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "classify/classifiers.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/idr_qr.h"
#include "core/rlda.h"
#include "core/srda.h"
#include "dataset/face_generator.h"
#include "dataset/split.h"
#include "dataset/spoken_letter_generator.h"
#include "dataset/text_generator.h"
#include "matrix/blas.h"

namespace srda {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchObservability obs(argc, argv);
  const bool full = HasFlag(argc, argv, "--full");
  const bool smoke = HasFlag(argc, argv, "--smoke");
  std::cout << "Experiment: SRDA ablations (design choices from Section III)\n"
            << "Profile: "
            << (smoke ? "smoke (tiny sizes, no checks)"
                      : (full ? "full" : "small (use --full)"))
            << "\n";

  // ----- A: LSQR iteration budget -----
  TextGeneratorOptions text_options;
  text_options.num_topics = 10;
  text_options.docs_per_topic = smoke ? 40 : (full ? 400 : 150);
  text_options.vocabulary_size = smoke ? 2000 : (full ? 26214 : 8000);
  text_options.topic_vocabulary_size = smoke ? 200 : (full ? 1500 : 500);
  const SparseDataset text = GenerateTextDataset(text_options);
  Rng rng(707);
  const TrainTestSplit split = StratifiedSplitByFraction(
      text.labels, text.num_classes, 0.2, &rng);
  const SparseDataset train = Subset(text, split.train);
  const SparseDataset test = Subset(text, split.test);

  std::cout << "\n== A. LSQR iteration budget (sparse text, 20% train) ==\n";
  TablePrinter iteration_table({"iterations", "error %", "train s"});
  std::vector<double> iteration_errors;
  const std::vector<int> iteration_budgets =
      smoke ? std::vector<int>{2, 5}
            : std::vector<int>{2, 5, 10, 15, 20, 30, 50};
  for (int k : iteration_budgets) {
    const RunResult run = RunSparseSrda(train, test, 1.0, k);
    iteration_errors.push_back(run.error_percent);
    iteration_table.AddRow({std::to_string(k),
                            FormatDouble(run.error_percent, 2),
                            FormatDouble(run.seconds, 4)});
  }
  iteration_table.Print(std::cout);

  // ----- B: bias absorption vs explicit centering -----
  std::cout << "\n== B. Bias absorption vs explicit centering ==\n";
  double absorbed_seconds = 0.0;
  double absorbed_error = 0.0;
  {
    Stopwatch watch;
    const RunResult run = RunSparseSrda(train, test, 1.0, 15);
    absorbed_seconds = run.seconds;
    absorbed_error = run.error_percent;
  }
  // Explicit centering: densify, subtract the mean, run dense LSQR.
  double centered_seconds = 0.0;
  double centered_error = 0.0;
  {
    DenseDataset dense_train = Densify(train);
    Stopwatch watch;
    Matrix centered = dense_train.features;
    SubtractRowVector(ColumnMeans(centered), &centered);
    SrdaOptions options;
    options.solver = SrdaSolver::kLsqr;
    options.lsqr_iterations = 15;
    const SrdaModel model =
        FitSrda(centered, dense_train.labels, dense_train.num_classes,
                options);
    centered_seconds = watch.ElapsedSeconds();
    // Evaluate: the model was trained on centered data, so embed test data
    // after subtracting the training mean.
    const Vector mean = ColumnMeans(dense_train.features);
    Matrix dense_test = test.features.ToDense();
    SubtractRowVector(mean, &dense_test);
    const Matrix train_embedded = model.embedding.Transform(centered);
    const Matrix test_embedded = model.embedding.Transform(dense_test);
    CentroidClassifier classifier;
    classifier.Fit(train_embedded, dense_train.labels, text.num_classes);
    centered_error =
        100.0 * ErrorRate(classifier.Predict(test_embedded), test.labels);
  }
  TablePrinter bias_table({"variant", "error %", "train s", "data form"});
  bias_table.AddRow({"append-ones (paper)", FormatDouble(absorbed_error, 2),
                     FormatDouble(absorbed_seconds, 4), "sparse CSR"});
  bias_table.AddRow({"explicit centering", FormatDouble(centered_error, 2),
                     FormatDouble(centered_seconds, 4), "dense (densified)"});
  bias_table.Print(std::cout);

  // ----- C: primal vs dual normal equations -----
  std::cout << "\n== C. Primal (n<=m) vs dual (n>m) normal equations ==\n";
  TablePrinter pd_table({"shape", "path", "error %", "train s"});
  {
    SpokenLetterGeneratorOptions options;
    options.num_classes = 10;
    options.examples_per_class = smoke ? 20 : (full ? 200 : 80);
    options.num_features = smoke ? 60 : 150;  // n < m -> primal
    const DenseDataset data = GenerateSpokenLetterDataset(options);
    Rng split_rng(11);
    const TrainTestSplit s = StratifiedSplitByCount(
        data.labels, 10, options.examples_per_class / 2, &split_rng);
    const RunResult run = RunDense(Algorithm::kSrda, Subset(data, s.train),
                                   Subset(data, s.test));
    pd_table.AddRow({"m > n", "primal", FormatDouble(run.error_percent, 2),
                     FormatDouble(run.seconds, 4)});
  }
  {
    SpokenLetterGeneratorOptions options;
    options.num_classes = 10;
    options.examples_per_class = smoke ? 12 : (full ? 60 : 30);
    options.num_features = smoke ? 200 : (full ? 2000 : 800);  // n > m -> dual
    const DenseDataset data = GenerateSpokenLetterDataset(options);
    Rng split_rng(12);
    const TrainTestSplit s = StratifiedSplitByCount(
        data.labels, 10, options.examples_per_class / 2, &split_rng);
    const RunResult run = RunDense(Algorithm::kSrda, Subset(data, s.train),
                                   Subset(data, s.test));
    pd_table.AddRow({"n > m", "dual", FormatDouble(run.error_percent, 2),
                     FormatDouble(run.seconds, 4)});
  }
  pd_table.Print(std::cout);

  // ----- D: RLDA faithful vs low-rank path -----
  std::cout << "\n== D. RLDA eigensolver path (faithful n^3 vs rank-c) ==\n";
  double faithful_seconds = 0.0;
  double lowrank_seconds = 0.0;
  double faithful_error = 0.0;
  double lowrank_error = 0.0;
  {
    SpokenLetterGeneratorOptions data_options;
    data_options.num_classes = 12;
    data_options.examples_per_class = smoke ? 16 : (full ? 120 : 60);
    data_options.num_features = smoke ? 80 : (full ? 617 : 300);
    const DenseDataset data = GenerateSpokenLetterDataset(data_options);
    Rng split_rng(21);
    const TrainTestSplit s2 = StratifiedSplitByCount(
        data.labels, 12, data_options.examples_per_class / 2, &split_rng);
    const DenseDataset train = Subset(data, s2.train);
    const DenseDataset test = Subset(data, s2.test);
    auto evaluate = [&](const RldaModel& model) {
      CentroidClassifier classifier;
      classifier.Fit(model.embedding.Transform(train.features), train.labels,
                     12);
      return 100.0 * ErrorRate(classifier.Predict(model.embedding.Transform(
                                   test.features)),
                               test.labels);
    };
    {
      RldaOptions rlda_options;  // faithful path (default)
      Stopwatch watch;
      const RldaModel model =
          FitRlda(train.features, train.labels, 12, rlda_options);
      faithful_seconds = watch.ElapsedSeconds();
      faithful_error = evaluate(model);
    }
    {
      RldaOptions rlda_options;
      rlda_options.exploit_low_rank = true;
      Stopwatch watch;
      const RldaModel model =
          FitRlda(train.features, train.labels, 12, rlda_options);
      lowrank_seconds = watch.ElapsedSeconds();
      lowrank_error = evaluate(model);
    }
    TablePrinter rlda_table({"path", "error %", "train s"});
    rlda_table.AddRow({"faithful (paper cost)", FormatDouble(faithful_error, 2),
                       FormatDouble(faithful_seconds, 4)});
    rlda_table.AddRow({"rank-(c-1) shortcut", FormatDouble(lowrank_error, 2),
                       FormatDouble(lowrank_seconds, 4)});
    rlda_table.Print(std::cout);
  }

  // ----- E: classifier protocol -----
  std::cout << "\n== E. Classifier in the embedded space ==\n";
  double centroid_gap = 0.0;  // IDR/QR error - SRDA error per classifier
  double knn_gap = 0.0;
  {
    FaceGeneratorOptions face_options;
    face_options.num_subjects = 40;
    face_options.images_per_subject = smoke ? 8 : (full ? 60 : 40);
    face_options.image_size = 16;
    const DenseDataset faces = GenerateFaceDataset(face_options);
    Rng face_rng(77);
    const TrainTestSplit fs = StratifiedSplitByCount(
        faces.labels, 40, smoke ? 4 : 20, &face_rng);
    const DenseDataset ftrain = Subset(faces, fs.train);
    const DenseDataset ftest = Subset(faces, fs.test);
    const SrdaModel srda_model =
        FitSrda(ftrain.features, ftrain.labels, 40);
    const IdrQrModel idr_model =
        FitIdrQr(ftrain.features, ftrain.labels, 40);

    TablePrinter protocol_table(
        {"classifier", "SRDA error %", "IDR/QR error %"});
    auto evaluate = [&](auto&& make_classifier) {
      const Matrix srda_train =
          srda_model.embedding.Transform(ftrain.features);
      const Matrix srda_test = srda_model.embedding.Transform(ftest.features);
      auto c1 = make_classifier();
      c1.Fit(srda_train, ftrain.labels, 40);
      const double srda_error =
          100.0 * ErrorRate(c1.Predict(srda_test), ftest.labels);
      const Matrix idr_train = idr_model.embedding.Transform(ftrain.features);
      const Matrix idr_test = idr_model.embedding.Transform(ftest.features);
      auto c2 = make_classifier();
      c2.Fit(idr_train, ftrain.labels, 40);
      const double idr_error =
          100.0 * ErrorRate(c2.Predict(idr_test), ftest.labels);
      return std::make_pair(srda_error, idr_error);
    };
    const auto [centroid_srda, centroid_idr] =
        evaluate([] { return CentroidClassifier(); });
    protocol_table.AddRow({"nearest centroid", FormatDouble(centroid_srda, 2),
                           FormatDouble(centroid_idr, 2)});
    const auto [knn1_srda, knn1_idr] =
        evaluate([] { return KnnClassifier(1); });
    protocol_table.AddRow({"1-NN", FormatDouble(knn1_srda, 2),
                           FormatDouble(knn1_idr, 2)});
    const auto [knn5_srda, knn5_idr] =
        evaluate([] { return KnnClassifier(5); });
    protocol_table.AddRow({"5-NN", FormatDouble(knn5_srda, 2),
                           FormatDouble(knn5_idr, 2)});
    protocol_table.Print(std::cout);
    centroid_gap = centroid_idr - centroid_srda;
    knn_gap = knn1_idr - knn1_srda;
  }

  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  std::cout << "\n== Shape checks ==\n";
  bool ok = true;
  // Error at 15 iterations within 1.5 points of the 50-iteration error.
  ok &= ShapeCheck(
      iteration_errors[3] <= iteration_errors.back() + 1.5,
      "15 LSQR iterations match the converged error (paper Section IV-B)");
  ok &= ShapeCheck(iteration_errors[0] >= iteration_errors.back() - 0.5,
                   "very few iterations (2) do not beat converged accuracy");
  ok &= ShapeCheck(absorbed_seconds < centered_seconds,
                   "bias absorption is faster than explicit centering");
  ok &= ShapeCheck(std::abs(absorbed_error - centered_error) < 3.0,
                   "bias absorption matches explicit centering accuracy");
  ok &= ShapeCheck(std::abs(faithful_error - lowrank_error) < 0.5,
                   "RLDA paths agree in accuracy");
  ok &= ShapeCheck(lowrank_seconds < faithful_seconds,
                   "rank-(c-1) shortcut is faster than the full "
                   "eigendecomposition");
  ok &= ShapeCheck(centroid_gap > -1.0 && knn_gap > -1.0,
                   "SRDA's advantage over IDR/QR is classifier-agnostic "
                   "(centroid and 1-NN)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
