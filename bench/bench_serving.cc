// Serving-path benchmark: model-store load cost and micro-batched
// prediction throughput.
//
// Two measurements against one SRDA model trained on synthetic gaussian
// blobs:
//
//   model load  — repeated LoadText (parse every coefficient) vs LoadBinary
//                 (mmap + section memcpys). The binary codec's claim is
//                 zero parse cost, so its per-load time must beat the text
//                 parser's; both loaded models must equal the trained one
//                 bit for bit.
//
//   serving     — concurrent client threads push query blocks through the
//                 micro-batching PredictionService (serve/serving.h) at
//                 several client counts; sustained predictions/s and exact
//                 p50/p99 request latency per configuration. One ordered
//                 pass is compared row-for-row against direct scoring —
//                 batching must never change a prediction.
//
// Full mode writes BENCH_serving.json and asserts the headline shape
// checks (>100k predictions/s, binary load faster than text, served ==
// direct). Pass --smoke for a seconds-long run without shape checks;
// --json-out=FILE writes the measurement JSON in either mode (the smoke
// JSON feeds the srda_bench_diff regression gate under ctest).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/trainers.h"
#include "matrix/blas.h"
#include "model/codec.h"
#include "model/model.h"
#include "serve/serving.h"

namespace srda {
namespace bench {
namespace {

struct Blobs {
  Matrix features;
  std::vector<int> labels;
  int num_classes = 0;
};

// Well-separated gaussian blobs: class k's mean puts 4.0 in coordinates
// k and (k + 1) % cols, so centroids stay distinct at any class count.
Blobs MakeBlobs(int rows, int cols, int num_classes, uint64_t seed) {
  Rng rng(seed);
  Blobs blobs;
  blobs.features = Matrix(rows, cols);
  blobs.num_classes = num_classes;
  for (int i = 0; i < rows; ++i) {
    const int k = i % num_classes;
    blobs.labels.push_back(k);
    for (int j = 0; j < cols; ++j) {
      const bool hot = j == k % cols || j == (k + 1) % cols;
      blobs.features(i, j) = (hot ? 4.0 : 0.0) + rng.NextGaussian();
    }
  }
  return blobs;
}

std::vector<Matrix> SliceBlocks(const Matrix& features, int block_rows) {
  std::vector<Matrix> blocks;
  for (int start = 0; start < features.rows(); start += block_rows) {
    const int rows = std::min(block_rows, features.rows() - start);
    Matrix block(rows, features.cols());
    std::memcpy(block.RowPtr(0), features.RowPtr(start),
                static_cast<size_t>(rows) * features.cols() * sizeof(double));
    blocks.push_back(std::move(block));
  }
  return blocks;
}

// Mean seconds per load over `repeats` loads of `path`.
double TimeLoads(const std::string& path, int repeats, double* checksum) {
  Stopwatch watch;
  for (int r = 0; r < repeats; ++r) {
    const model::SrdaModel loaded = model::Load(path);
    // Touch the payload so the load cannot be optimized away.
    *checksum += loaded.centroids(0, 0);
  }
  return watch.ElapsedSeconds() / repeats;
}

bool BitwiseEqual(const model::SrdaModel& a, const model::SrdaModel& b) {
  return MaxAbsDiff(a.embedding.projection(), b.embedding.projection()) == 0 &&
         MaxAbsDiff(a.embedding.bias(), b.embedding.bias()) == 0 &&
         MaxAbsDiff(a.centroids, b.centroids) == 0 &&
         a.raw_labels == b.raw_labels;
}

struct ServeRun {
  int clients = 0;
  int client_block = 0;
  int64_t requests = 0;
  double seconds = 0.0;
  double predictions_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
  int max_batch_seen = 0;
};

// Drives `requests` rows through a fresh service with `clients` threads,
// each cycling over `blocks` (different start offsets, so concurrent
// clients' blocks coalesce into shared batches).
ServeRun RunServing(const model::SrdaModel& model,
                    const std::vector<Matrix>& blocks, int clients,
                    int client_block, int64_t requests,
                    const serve::ServeOptions& options) {
  serve::PredictionService service(&model, options);
  std::atomic<int64_t> budget{requests};
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&service, &blocks, &budget, c] {
      size_t next = static_cast<size_t>(c) % blocks.size();
      while (true) {
        const Matrix& block = blocks[next];
        next = (next + 1) % blocks.size();
        if (budget.fetch_sub(block.rows(), std::memory_order_relaxed) <= 0) {
          return;
        }
        service.Predict(block);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double seconds = watch.ElapsedSeconds();
  const serve::ServeStats stats = service.Stats();
  ServeRun run;
  run.clients = clients;
  run.client_block = client_block;
  run.requests = stats.requests;
  run.seconds = seconds;
  run.predictions_per_s = static_cast<double>(stats.requests) / seconds;
  run.p50_us = serve::LatencyQuantile(stats.latencies_us, 0.50);
  run.p99_us = serve::LatencyQuantile(stats.latencies_us, 0.99);
  run.mean_batch = stats.mean_batch();
  run.max_batch_seen = stats.max_batch_seen;
  return run;
}

int Main(int argc, char** argv) {
  BenchObservability obs(argc, argv);
  const bool smoke = HasFlag(argc, argv, "--smoke");

  // Serving-sized problem: modest input width keeps per-query flops small
  // (the regime where batching policy, not GEMM width, decides throughput).
  const int rows = smoke ? 120 : 2000;
  const int cols = smoke ? 8 : 32;
  const int num_classes = smoke ? 4 : 10;
  const Blobs blobs = MakeBlobs(rows, cols, num_classes, 42);

  std::cout << "Experiment: model-store load cost + serving throughput\n"
            << "Profile: " << (smoke ? "smoke (tiny sizes, no checks)" : "full")
            << "\n"
            << "Dataset: " << rows << " x " << cols << ", " << num_classes
            << " classes\n";

  TrainerOptions train_options;
  train_options.alpha = 1.0;
  const TrainResult trained =
      TrainDenseByName("srda", blobs.features, blobs.labels, num_classes,
                       train_options);
  model::Provenance provenance;
  provenance.trainer = "srda";
  provenance.alpha = train_options.alpha;
  const model::SrdaModel model = model::BuildModel(
      trained.embedding, trained.embedding.Transform(blobs.features),
      blobs.labels, num_classes, {}, provenance);

  // --- Model-store load cost: text parse vs binary mmap. ---
  // Paths embed the pid: ctest runs several of this binary's smoke
  // variants concurrently in one directory, and a shared name races.
  const std::string stem =
      "bench_serving_model." + std::to_string(::getpid());
  const std::string text_path = stem + ".txt";
  const std::string binary_path = stem + ".srdm";
  model::SaveText(model, text_path);
  model::SaveBinary(model, binary_path);
  const bool text_bitwise = BitwiseEqual(model, model::LoadText(text_path));
  const bool binary_bitwise =
      BitwiseEqual(model, model::LoadBinary(binary_path));
  const int load_repeats = smoke ? 3 : 200;
  double checksum = 0.0;
  const double text_load_s = TimeLoads(text_path, load_repeats, &checksum);
  const double binary_load_s = TimeLoads(binary_path, load_repeats, &checksum);
  std::cout << "model " << model.input_dim() << " -> " << model.output_dim()
            << ": text load " << text_load_s * 1e6 << " us, binary load "
            << binary_load_s * 1e6 << " us (x"
            << FormatRatio(text_load_s, binary_load_s, 1)
            << " faster), round trips bitwise: text "
            << (text_bitwise ? "yes" : "NO") << ", binary "
            << (binary_bitwise ? "yes" : "NO") << "\n";

  // --- Batching exactness: one ordered pass vs direct scoring. ---
  CentroidClassifier direct;
  direct.SetCentroids(model.centroids);
  const std::vector<int> expected = model.ToRawLabels(
      direct.ScoreBatch(model.embedding.Transform(blobs.features)));
  const int client_block = smoke ? 16 : 64;
  const std::vector<Matrix> blocks = SliceBlocks(blobs.features, client_block);
  serve::ServeOptions options;
  std::vector<int> served;
  {
    serve::PredictionService service(&model, options);
    for (const Matrix& block : blocks) {
      for (int raw : service.Predict(block)) served.push_back(raw);
    }
  }
  const bool exact = served == expected;
  std::cout << "served predictions equal direct scoring: "
            << (exact ? "yes" : "NO") << "\n";

  // --- Throughput/latency sweep over client counts. ---
  const int64_t requests = smoke ? 2000 : 300000;
  const std::vector<int> client_counts = smoke ? std::vector<int>{2}
                                               : std::vector<int>{1, 4, 8};
  std::vector<ServeRun> runs;
  for (int clients : client_counts) {
    runs.push_back(RunServing(model, blocks, clients, client_block, requests,
                              options));
  }

  TablePrinter table({"clients", "block", "requests", "seconds", "preds/s",
                      "p50 us", "p99 us", "mean batch", "max batch"});
  for (const ServeRun& run : runs) {
    table.AddRow({std::to_string(run.clients),
                  std::to_string(run.client_block),
                  std::to_string(run.requests), FormatDouble(run.seconds, 3),
                  FormatDouble(run.predictions_per_s, 0),
                  FormatDouble(run.p50_us, 1), FormatDouble(run.p99_us, 1),
                  FormatDouble(run.mean_batch, 1),
                  std::to_string(run.max_batch_seen)});
  }
  table.Print(std::cout);

  std::remove(text_path.c_str());
  std::remove(binary_path.c_str());

  double best_throughput = 0.0;
  for (const ServeRun& run : runs) {
    best_throughput = std::max(best_throughput, run.predictions_per_s);
  }

  const std::string json_out = GetFlagValue(argc, argv, "--json-out");
  const std::string json_path =
      !json_out.empty() ? json_out : std::string("BENCH_serving.json");
  if (smoke && json_out.empty()) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  std::ofstream json(json_path);
  json << "{\n  \"experiment\": \"model_store_and_serving\",\n"
       << "  \"rows\": " << rows << ",\n"
       << "  \"cols\": " << cols << ",\n"
       << "  \"num_classes\": " << num_classes << ",\n"
       << "  \"trainer\": \"srda\",\n"
       << "  \"model_load\": {\"repeats\": " << load_repeats
       << ", \"text_seconds\": " << text_load_s
       << ", \"binary_seconds\": " << binary_load_s
       << ", \"binary_speedup\": " << text_load_s / binary_load_s
       << ", \"text_bitwise\": " << (text_bitwise ? "true" : "false")
       << ", \"binary_bitwise\": " << (binary_bitwise ? "true" : "false")
       << "},\n"
       << "  \"served_equals_direct\": " << (exact ? "true" : "false")
       << ",\n"
       << "  \"max_batch\": " << options.max_batch << ",\n"
       << "  \"max_delay_ms\": " << options.max_delay_ms << ",\n"
       << "  \"client_block\": " << client_block << ",\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const ServeRun& run = runs[i];
    json << "    {\"clients\": " << run.clients
         << ", \"requests\": " << run.requests
         << ", \"seconds\": " << run.seconds
         << ", \"predictions_per_s\": " << run.predictions_per_s
         << ", \"latency_p50_us\": " << run.p50_us
         << ", \"latency_p99_us\": " << run.p99_us
         << ", \"mean_batch\": " << run.mean_batch
         << ", \"max_batch_seen\": " << run.max_batch_seen << "}"
         << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"best_predictions_per_s\": " << best_throughput << "\n}\n";
  std::cout << "wrote " << json_path << "\n";

  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  bool ok = true;
  ok &= ShapeCheck(text_bitwise && binary_bitwise,
                   "both codecs reload the trained model bit for bit");
  ok &= ShapeCheck(binary_load_s < text_load_s,
                   "binary (mmap) model load is faster than the text parser");
  ok &= ShapeCheck(exact,
                   "micro-batched serving reproduces direct scoring exactly");
  ok &= ShapeCheck(best_throughput > 100000.0,
                   "peak sustained throughput exceeds 100k predictions/s");
  bool latencies_sane = true;
  for (const ServeRun& run : runs) {
    latencies_sane = latencies_sane && run.p50_us > 0.0 &&
                     run.p99_us >= run.p50_us;
  }
  ok &= ShapeCheck(latencies_sane,
                   "every configuration reports p50 <= p99 request latency");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
