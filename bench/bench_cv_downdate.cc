// Factor-once cross-validation: times SelectSrdaAlpha's fold-downdate
// engine against the two loops it replaces on an Isolet-scale problem
// (n = 1024 features, 5 stratified folds, the paper's 9-point alpha grid).
//
// Strategies, oldest first:
//   rebuild per fold    — a fresh FitSrda per (fold, alpha): every grid
//                         point pays its own Gram build and factorization
//                         (the pre-engine CV loop).
//   per-fold Gram cache — one RidgeSolver per training fold: each fold
//                         builds its Gram once and refactors per alpha.
//   fold downdates      — SelectSrdaAlpha today: one solver bound to the
//                         full dataset, every fold factor derived by a
//                         rank-(|fold|+1) downdate of the parent's cached
//                         factor. One Gram build for the whole grid.
//
// All three must agree on the per-alpha CV errors and the selected alpha;
// a separate traced pass proves via the ridge.fold_downdate_hit /
// _fallback counters that every fold factor came from a downdate and none
// fell back to a rebuild.
//
// Pass --smoke for a seconds-long run without shape checks.

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "classify/classifiers.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/srda.h"
#include "dataset/split.h"
#include "dataset/spoken_letter_generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "select/model_selection.h"
#include "solver/ridge_solver.h"

namespace srda {
namespace bench {
namespace {

struct FoldSets {
  std::vector<DenseDataset> train;
  std::vector<DenseDataset> validation;
};

// Draws the same stratified folds SelectSrdaAlpha draws from this seed, so
// every strategy cross-validates the identical partition.
FoldSets BuildFoldSets(const DenseDataset& dataset, int num_folds,
                       uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::vector<int>> folds =
      StratifiedFolds(dataset.labels, dataset.num_classes, num_folds, &rng);
  FoldSets sets;
  for (int f = 0; f < num_folds; ++f) {
    std::vector<int> train_indices;
    for (int other = 0; other < num_folds; ++other) {
      if (other == f) continue;
      train_indices.insert(train_indices.end(),
                           folds[static_cast<size_t>(other)].begin(),
                           folds[static_cast<size_t>(other)].end());
    }
    std::sort(train_indices.begin(), train_indices.end());
    sets.train.push_back(Subset(dataset, train_indices));
    sets.validation.push_back(Subset(dataset, folds[static_cast<size_t>(f)]));
  }
  return sets;
}

double FoldError(const SrdaModel& model, const DenseDataset& train,
                 const DenseDataset& validation) {
  SRDA_CHECK(model.converged) << "SRDA failed during CV";
  CentroidClassifier classifier;
  classifier.Fit(model.embedding.Transform(train.features), train.labels,
                 train.num_classes);
  return ErrorRate(
      classifier.Predict(model.embedding.Transform(validation.features)),
      validation.labels);
}

AlphaSearchResult Finalize(std::vector<double> errors, int num_folds,
                           const std::vector<double>& alphas) {
  AlphaSearchResult result;
  for (double& error : errors) error /= num_folds;
  result.errors = std::move(errors);
  result.best_index = static_cast<int>(
      std::min_element(result.errors.begin(), result.errors.end()) -
      result.errors.begin());
  result.best_alpha = alphas[static_cast<size_t>(result.best_index)];
  return result;
}

// Pre-engine loop: every (fold, alpha) grid point rebuilds the training
// Gram and refactors from scratch.
AlphaSearchResult RebuildPerFold(const DenseDataset& dataset,
                                 const std::vector<double>& alphas,
                                 int num_folds, uint64_t seed) {
  const FoldSets sets = BuildFoldSets(dataset, num_folds, seed);
  std::vector<double> errors(alphas.size(), 0.0);
  for (size_t a = 0; a < alphas.size(); ++a) {
    for (int f = 0; f < num_folds; ++f) {
      const DenseDataset& train = sets.train[static_cast<size_t>(f)];
      SrdaOptions options;
      options.alpha = alphas[a];
      const SrdaModel model =
          FitSrda(train.features, train.labels, train.num_classes, options);
      errors[a] +=
          FoldError(model, train, sets.validation[static_cast<size_t>(f)]);
    }
  }
  return Finalize(std::move(errors), num_folds, alphas);
}

// Previous engine behaviour: one solver per training fold, so each fold
// builds its Gram once and pays one refactorization per alpha.
AlphaSearchResult CachedGramPerFold(const DenseDataset& dataset,
                                    const std::vector<double>& alphas,
                                    int num_folds, uint64_t seed) {
  const FoldSets sets = BuildFoldSets(dataset, num_folds, seed);
  std::vector<double> errors(alphas.size(), 0.0);
  for (int f = 0; f < num_folds; ++f) {
    const DenseDataset& train = sets.train[static_cast<size_t>(f)];
    RidgeSolver solver(&train.features);
    for (size_t a = 0; a < alphas.size(); ++a) {
      SrdaOptions options;
      options.alpha = alphas[a];
      const SrdaModel model =
          FitSrda(&solver, train.labels, train.num_classes, options);
      errors[a] +=
          FoldError(model, train, sets.validation[static_cast<size_t>(f)]);
    }
  }
  return Finalize(std::move(errors), num_folds, alphas);
}

double CounterValue(const std::string& name) {
  for (const MetricSnapshot& snapshot :
       MetricsRegistry::Global().Snapshot()) {
    if (snapshot.name == name) return snapshot.value;
  }
  return 0.0;
}

double MaxErrorDiff(const AlphaSearchResult& a, const AlphaSearchResult& b) {
  double max_diff = 0.0;
  for (size_t g = 0; g < a.errors.size(); ++g) {
    max_diff = std::max(max_diff, std::fabs(a.errors[g] - b.errors[g]));
  }
  return max_diff;
}

int Main(int argc, char** argv) {
  BenchObservability obs(argc, argv);
  const bool smoke = HasFlag(argc, argv, "--smoke");

  // 26 * 50 = 1300 samples: every 4/5 training fold keeps 1040 >= 1024
  // rows, so all strategies stay on the primal side and every grid point
  // compares an n x n factor against an n x n downdate.
  SpokenLetterGeneratorOptions options;
  options.examples_per_class = smoke ? 15 : 50;
  options.num_features = smoke ? 48 : 1024;
  const DenseDataset data = GenerateSpokenLetterDataset(options);
  const int m = data.features.rows();
  const int n = data.features.cols();
  const int num_folds = smoke ? 3 : 5;
  const uint64_t seed = 97;

  // The paper's alpha/(1+alpha) grid over (0, 1).
  std::vector<double> alphas;
  const int num_alphas = smoke ? 3 : 9;
  for (int g = 1; g <= num_alphas; ++g) {
    const double ratio = static_cast<double>(g) / (num_alphas + 1);
    alphas.push_back(ratio / (1.0 - ratio));
  }

  std::cout << "Experiment: factor-once CV via fold downdates\n"
            << "Profile: " << (smoke ? "smoke (tiny sizes, no checks)" : "full")
            << "\n"
            << "Dataset: " << m << " x " << n << ", " << num_folds
            << " folds, " << alphas.size() << " alphas\n";

  Stopwatch rebuild_watch;
  const AlphaSearchResult rebuilt =
      RebuildPerFold(data, alphas, num_folds, seed);
  const double rebuild_seconds = rebuild_watch.ElapsedSeconds();

  Stopwatch cached_watch;
  const AlphaSearchResult cached =
      CachedGramPerFold(data, alphas, num_folds, seed);
  const double cached_seconds = cached_watch.ElapsedSeconds();

  Stopwatch downdate_watch;
  const AlphaSearchResult downdated =
      SelectSrdaAlpha(data, alphas, num_folds, seed);
  const double downdate_seconds = downdate_watch.ElapsedSeconds();

  const double max_diff_rebuild = MaxErrorDiff(rebuilt, downdated);
  const double max_diff_cached = MaxErrorDiff(cached, downdated);
  const double speedup_rebuild =
      downdate_seconds > 0.0 ? rebuild_seconds / downdate_seconds : 0.0;
  const double speedup_cached =
      downdate_seconds > 0.0 ? cached_seconds / downdate_seconds : 0.0;

  TablePrinter table({"strategy", "seconds", "speedup", "best alpha"});
  table.AddRow({"rebuild per fold", FormatDouble(rebuild_seconds, 3), "1.0",
                FormatDouble(rebuilt.best_alpha, 4)});
  table.AddRow({"per-fold Gram cache", FormatDouble(cached_seconds, 3),
                FormatDouble(cached_seconds > 0.0
                                 ? rebuild_seconds / cached_seconds
                                 : 0.0,
                             2),
                FormatDouble(cached.best_alpha, 4)});
  table.AddRow({"fold downdates", FormatDouble(downdate_seconds, 3),
                FormatDouble(speedup_rebuild, 2),
                FormatDouble(downdated.best_alpha, 4)});
  table.Print(std::cout);
  std::cout << "max |CV error diff| vs rebuild: " << max_diff_rebuild
            << " (vs cached Gram: " << max_diff_cached << ")\n";

  // Traced pass: rerun the downdate strategy with the recorder on and
  // prove every fold factor came from a downdate of the parent's. Timing
  // above ran untraced (counters are off when the recorder is off) unless
  // the user asked for a trace; in that case keep their recorder state.
  const bool was_enabled = TraceRecorder::Global().enabled();
  if (!was_enabled) TraceRecorder::Global().SetEnabled(true);
  const double hits_before = CounterValue("ridge.fold_downdate_hit");
  const double fallbacks_before = CounterValue("ridge.fold_downdate_fallback");
  const AlphaSearchResult traced =
      SelectSrdaAlpha(data, alphas, num_folds, seed);
  const double hits = CounterValue("ridge.fold_downdate_hit") - hits_before;
  const double fallbacks =
      CounterValue("ridge.fold_downdate_fallback") - fallbacks_before;
  if (!was_enabled) TraceRecorder::Global().SetEnabled(false);
  SRDA_CHECK_EQ(traced.best_index, downdated.best_index)
      << "traced rerun diverged";
  std::cout << "fold factors: " << hits << " downdated, " << fallbacks
            << " rebuilt (condition fallback)\n";

  if (smoke) {
    std::cout << "\n[SMOKE] shape checks skipped\n";
    return 0;
  }

  std::ofstream json("BENCH_cv_downdate.json");
  json << "{\n  \"experiment\": \"cv_fold_downdate\",\n"
       << "  \"samples\": " << m << ",\n"
       << "  \"features\": " << n << ",\n"
       << "  \"num_folds\": " << num_folds << ",\n"
       << "  \"num_alphas\": " << alphas.size() << ",\n"
       << "  \"rebuild_seconds\": " << rebuild_seconds << ",\n"
       << "  \"cached_gram_seconds\": " << cached_seconds << ",\n"
       << "  \"downdate_seconds\": " << downdate_seconds << ",\n"
       << "  \"speedup_vs_rebuild\": " << speedup_rebuild << ",\n"
       << "  \"speedup_vs_cached_gram\": " << speedup_cached << ",\n"
       << "  \"max_error_diff_vs_rebuild\": " << max_diff_rebuild << ",\n"
       << "  \"best_alpha_rebuild\": " << rebuilt.best_alpha << ",\n"
       << "  \"best_alpha_downdate\": " << downdated.best_alpha << ",\n"
       << "  \"fold_downdate_hits\": " << hits << ",\n"
       << "  \"fold_downdate_fallbacks\": " << fallbacks << "\n}\n";
  std::cout << "wrote BENCH_cv_downdate.json\n";

  bool ok = true;
  ok &= ShapeCheck(speedup_rebuild >= 1.5,
                   "fold-downdate CV at least 1.5x faster than rebuilding "
                   "per fold");
  ok &= ShapeCheck(downdated.best_index == rebuilt.best_index,
                   "downdate and rebuild select the same alpha");
  ok &= ShapeCheck(max_diff_rebuild <= 1e-8,
                   "per-alpha CV errors match the rebuild within 1e-8");
  ok &= ShapeCheck(
      hits == static_cast<double>(num_folds) * alphas.size() &&
          fallbacks == 0.0,
      "every fold x alpha factor came from a downdate (no fallbacks)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace srda

int main(int argc, char** argv) { return srda::bench::Main(argc, argv); }
